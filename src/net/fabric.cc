#include "net/fabric.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/log.h"

namespace c4::net {

namespace {

/** Flows with fewer remaining bytes than this are complete. */
constexpr double kByteEpsilon = 0.5;

/** A link allocated beyond this fraction of capacity is congested. */
constexpr double kCongestedFraction = 0.999;

/** Key of the per-(sender node, NIC) CNP aggregate map. */
std::uint64_t
nicKey(NodeId node, NicId nic)
{
    return (static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(node))
            << 32) |
           static_cast<std::uint32_t>(nic);
}

} // namespace

Fabric::Fabric(Simulator &sim, Topology &topo, FabricConfig cfg,
               std::uint64_t seed)
    : sim_(sim), topo_(topo), selector_(topo), cfg_(cfg), rng_(seed),
      linkAlloc_(topo.numLinks(), 0.0),
      linkDemand_(topo.numLinks(), 0.0),
      linkCongested_(topo.numLinks(), false),
      membership_(topo.numLinks()),
      linkDirtyFlag_(topo.numLinks(), 0),
      linkEpoch_(topo.numLinks(), 0),
      scratchMembers_(topo.numLinks()),
      scratchCap_(topo.numLinks(), 0.0),
      scratchUnfixed_(topo.numLinks(), 0)
{
}

FlowId
Fabric::admit(FlowState state)
{
    state.id = nextFlowId_++;
    state.startTime = sim_.now();
    const FlowId id = state.id;
    auto [it, inserted] = flows_.emplace(id, std::move(state));
    assert(inserted);
    for (LinkId l : it->second.route.links) {
        membership_.add(l, id);
        markLinkDirty(l);
    }
    ++started_;
    markDirty();
    return id;
}

FlowId
Fabric::startFlow(const PathRequest &req, Bytes bytes, FlowCallback done)
{
    assert(bytes > 0);
    FlowState st;
    st.req = req;
    st.hasReq = true;
    st.route = selector_.select(req);
    st.remaining = static_cast<double>(bytes);
    st.total = bytes;
    st.done = std::move(done);
    if (!st.route.valid()) {
        logDebug("fabric", "flow admitted stalled (no healthy path) "
                 "src=n%d dst=n%d", req.srcNode, req.dstNode);
    }
    return admit(std::move(st));
}

FlowId
Fabric::startFlowOnRoute(Route route, Bytes bytes, FlowCallback done)
{
    assert(bytes > 0);
    FlowState st;
    st.route = std::move(route);
    st.remaining = static_cast<double>(bytes);
    st.total = bytes;
    st.done = std::move(done);
    return admit(std::move(st));
}

bool
Fabric::abortFlow(FlowId id)
{
    flush();
    auto it = flows_.find(id);
    if (it == flows_.end())
        return false;
    dropFlowLinks(it->second);
    flows_.erase(it);
    markDirty();
    return true;
}

void
Fabric::stallFlow(FlowId id)
{
    flush();
    auto it = flows_.find(id);
    if (it == flows_.end())
        return;
    it->second.stalled = true;
    for (LinkId l : it->second.route.links)
        markLinkDirty(l);
    markDirty();
}

void
Fabric::resumeFlow(FlowId id)
{
    flush();
    auto it = flows_.find(id);
    if (it == flows_.end())
        return;
    it->second.stalled = false;
    for (LinkId l : it->second.route.links)
        markLinkDirty(l);
    markDirty();
}

void
Fabric::setLinkUp(LinkId id, bool up)
{
    // With a coalesce window, link events batch into one deferred
    // recompute; forcing consistency here would defeat that.
    if (cfg_.coalesceWindow == 0)
        flush();
    if (topo_.link(id).up == up)
        return;
    topo_.setLinkUp(id, up);
    markLinkDirty(id);
    const std::size_t touched =
        up ? reresolveRequestFlows() : rerouteFlowsTouching(id);
    trace::TraceScope &tr = sim_.tracer();
    if (tr.wants(trace::EventKind::PathRealloc)) {
        trace::Event tev;
        tev.when = sim_.now();
        tev.kind = trace::EventKind::PathRealloc;
        tev.a = id;
        tev.b = up ? 1 : 0;
        tev.value = static_cast<double>(touched);
        tev.detail = up ? "link_up" : "link_down";
        tr.record(std::move(tev));
    }
    obs::MetricsScope &mx = sim_.metrics();
    if (mx.attached()) {
        mx.count(up ? "fabric.link_up_events"
                    : "fabric.link_down_events");
        mx.count("fabric.flows_rerouted",
                 static_cast<std::int64_t>(touched));
    }
    markDirty(cfg_.coalesceWindow);
}

void
Fabric::setLinkCapacityScale(LinkId id, double scale)
{
    if (cfg_.coalesceWindow == 0)
        flush();
    topo_.setLinkCapacityScale(id, scale);
    markLinkDirty(id);
    trace::TraceScope &tr = sim_.tracer();
    if (tr.wants(trace::EventKind::PathRealloc)) {
        trace::Event tev;
        tev.when = sim_.now();
        tev.kind = trace::EventKind::PathRealloc;
        tev.a = id;
        tev.b = static_cast<std::int64_t>(membership_.memberCount(id));
        tev.value = scale;
        tev.detail = "link_scale";
        tr.record(std::move(tev));
    }
    markDirty(cfg_.coalesceWindow);
}

void
Fabric::setFlowRoute(FlowState &flow, Route route)
{
    for (LinkId l : flow.route.links) {
        membership_.remove(l, flow.id);
        markLinkDirty(l);
    }
    flow.route = std::move(route);
    for (LinkId l : flow.route.links) {
        membership_.add(l, flow.id);
        markLinkDirty(l);
    }
    if (!flow.route.valid()) {
        // A routeless flow has no link membership, so no component
        // search can reach it: silence it here. Callers advance
        // progress before rerouting, so no transmitted bytes are lost.
        flow.baseRate = 0.0;
        flow.rate = 0.0;
        flow.cnpRate = 0.0;
    }
}

void
Fabric::dropFlowLinks(FlowState &flow)
{
    for (LinkId l : flow.route.links) {
        membership_.remove(l, flow.id);
        markLinkDirty(l);
    }
}

std::size_t
Fabric::rerouteFlowsTouching(LinkId id)
{
    advanceProgress(); // bank progress before any flow is silenced
    std::size_t touched = 0;
    for (auto &[fid, flow] : flows_) {
        const auto &links = flow.route.links;
        if (std::find(links.begin(), links.end(), id) == links.end())
            continue;
        ++touched;
        if (flow.hasReq) {
            // ECMP rehash among the surviving next hops: deterministic
            // per flow, so rerouted flows can concentrate (Fig. 13a).
            setFlowRoute(flow, selector_.select(flow.req));
        } else {
            setFlowRoute(flow, Route{}); // explicit route died with it
        }
    }
    return touched;
}

std::size_t
Fabric::reresolveRequestFlows()
{
    // Re-resolve every request-backed flow, not just the stalled ones:
    // a restored link re-enters the ECMP hash, so flows rehashed onto
    // survivors during the outage rebalance back to their pre-fault
    // paths (selection is deterministic per request).
    advanceProgress();
    std::size_t touched = 0;
    for (auto &[fid, flow] : flows_) {
        if (!flow.hasReq)
            continue;
        Route fresh = selector_.select(flow.req);
        if (fresh.links == flow.route.links)
            continue;
        ++touched;
        setFlowRoute(flow, std::move(fresh));
    }
    return touched;
}

void
Fabric::advanceProgress()
{
    const Time now = sim_.now();
    const double dt = toSeconds(now - lastAdvance_);
    if (dt > 0.0) {
        for (auto &[id, flow] : flows_) {
            if (flow.rate > 0.0)
                flow.remaining =
                    std::max(0.0, flow.remaining - flow.rate * dt / 8.0);
        }
    }
    lastAdvance_ = now;
}

void
Fabric::markLinkDirty(LinkId id)
{
    auto li = static_cast<std::size_t>(id);
    if (linkDirtyFlag_[li])
        return;
    linkDirtyFlag_[li] = 1;
    dirtyLinks_.push_back(id);
}

void
Fabric::markDirty(Duration delay)
{
    const Time due = sim_.now() + delay;
    if (dirty_) {
        if (due >= recomputeDue_)
            return; // an equal-or-earlier recompute is already pending
        sim_.cancel(recomputeEvent_);
    }
    dirty_ = true;
    recomputeDue_ = due;
    // Defer at least to the end of the current instant so a batch of
    // flow starts (one collective round) costs a single re-allocation.
    recomputeEvent_ = sim_.scheduleAfter(delay, [this] {
        if (dirty_)
            recompute();
    });
}

void
Fabric::flush()
{
    if (dirty_)
        recompute();
}

void
Fabric::recompute()
{
    advanceProgress();
    dirty_ = false;
    if (recomputeEvent_ != kInvalidEvent) {
        sim_.cancel(recomputeEvent_);
        recomputeEvent_ = kInvalidEvent;
    }
    ++reallocations_;

    // --- component discovery -----------------------------------------
    // The refill set is the connected component of flows reachable
    // from dirty links through shared-link membership. Progressive
    // filling couples flows only through shared links, so components
    // fill independently: re-filling the closure reproduces exactly
    // what a global rebuild would assign, while untouched flows keep
    // their fair share and link allocations.
    ++epoch_;
    componentLinks_.clear();
    const std::size_t dirtySeeds = dirtyLinks_.size();
    const bool full = !cfg_.incrementalRecompute || allDirty_;
    if (full) {
        for (auto &[id, flow] : flows_) {
            flow.visitEpoch = epoch_;
            for (LinkId l : flow.route.links) {
                auto li = static_cast<std::size_t>(l);
                if (linkEpoch_[li] != epoch_) {
                    linkEpoch_[li] = epoch_;
                    componentLinks_.push_back(l);
                }
            }
        }
        for (LinkId l : dirtyLinks_) {
            auto li = static_cast<std::size_t>(l);
            if (linkEpoch_[li] != epoch_) {
                linkEpoch_[li] = epoch_;
                componentLinks_.push_back(l);
            }
        }
    } else {
        for (LinkId l : dirtyLinks_) {
            auto li = static_cast<std::size_t>(l);
            if (linkEpoch_[li] != epoch_) {
                linkEpoch_[li] = epoch_;
                componentLinks_.push_back(l);
            }
        }
        // BFS over the bipartite link <-> flow sharing graph;
        // componentLinks_ doubles as the queue.
        for (std::size_t head = 0; head < componentLinks_.size();
             ++head) {
            for (FlowId fid :
                 membership_.members(componentLinks_[head])) {
                auto it = flows_.find(fid);
                assert(it != flows_.end()); // membership is eager
                FlowState &flow = it->second;
                if (flow.visitEpoch == epoch_)
                    continue;
                flow.visitEpoch = epoch_;
                for (LinkId l : flow.route.links) {
                    auto li = static_cast<std::size_t>(l);
                    if (linkEpoch_[li] != epoch_) {
                        linkEpoch_[li] = epoch_;
                        componentLinks_.push_back(l);
                    }
                }
            }
        }
    }
    for (LinkId l : dirtyLinks_)
        linkDirtyFlag_[static_cast<std::size_t>(l)] = 0;
    dirtyLinks_.clear();
    allDirty_ = false;

    trace::TraceScope &tr = sim_.tracer();
    if (tr.wants(trace::EventKind::RecomputeBegin)) {
        trace::Event tev;
        tev.when = sim_.now();
        tev.kind = trace::EventKind::RecomputeBegin;
        tev.a = static_cast<std::int64_t>(flows_.size());
        tev.b = static_cast<std::int64_t>(dirtySeeds);
        tr.record(std::move(tev));
    }
    // Deterministic work counter: every link scanned by the filling
    // loop and every per-flow route update counts one unit.
    std::uint64_t work = 0;

    // Clear only the scratch the previous filling touched.
    for (int l : scratchActiveLinks_) {
        const auto li = static_cast<std::size_t>(l);
        scratchMembers_[li].clear();
        scratchCap_[li] = 0.0;
        scratchUnfixed_[li] = 0;
    }
    scratchActiveLinks_.clear();
    scratchRunnable_.clear();

    // Reset the persistent allocation state of the component's links;
    // links outside it keep alloc/demand/congestion as-is.
    for (LinkId l : componentLinks_) {
        const auto li = static_cast<std::size_t>(l);
        linkAlloc_[li] = 0.0;
        linkDemand_[li] = 0.0;
        linkCongested_[li] = false;
    }

    // Gather the component's runnable flows in flow-table order — the
    // same order the historical full rebuild used, which keeps both
    // floating-point accumulation and filling tie-breaks identical.
    std::vector<FlowState *> &runnable = scratchRunnable_;
    runnable.reserve(flows_.size());
    for (auto &[id, flow] : flows_) {
        if (flow.visitEpoch != epoch_)
            continue;
        flow.baseRate = 0.0;
        flow.rate = 0.0;
        flow.cnpRate = 0.0;
        if (flow.stalled || !flow.route.valid() ||
            flow.remaining <= kByteEpsilon) {
            continue;
        }
        flow.baseRate = -1.0; // sentinel: not yet fixed by filling
        runnable.push_back(&flow);
    }

    std::vector<std::vector<FlowState *>> &members = scratchMembers_;
    std::vector<double> &cap = scratchCap_;
    std::vector<int> &unfixed = scratchUnfixed_;
    std::vector<int> &activeLinks = scratchActiveLinks_;

    for (FlowState *f : runnable) {
        // Unconstrained demand: what the sender would inject absent
        // congestion control — its NIC port rate (DCQCN senders start
        // at line rate). Downstream links may then be oversubscribed,
        // which is what the CNP model keys off.
        const double desired =
            topo_.link(f->route.links.front()).effectiveCapacity();
        for (LinkId l : f->route.links) {
            auto li = static_cast<std::size_t>(l);
            if (members[li].empty()) {
                activeLinks.push_back(l);
                cap[li] = topo_.link(l).effectiveCapacity();
            }
            members[li].push_back(f);
            ++unfixed[li];
            linkDemand_[li] += desired;
        }
    }
    for (int l : activeLinks) {
        auto li = static_cast<std::size_t>(l);
        const double c = topo_.link(l).effectiveCapacity();
        linkDemand_[li] = c > 0.0 ? linkDemand_[li] / c : 0.0;
    }

    // Progressive filling: repeatedly saturate the most constrained
    // link — but only over the component, never the whole fabric.
    std::size_t fixed_count = 0;
    while (fixed_count < runnable.size()) {
        double best_fair = std::numeric_limits<double>::infinity();
        int best_link = kInvalidId;
        work += activeLinks.size();
        for (int l : activeLinks) {
            auto li = static_cast<std::size_t>(l);
            if (unfixed[li] <= 0)
                continue;
            const double fair =
                std::max(0.0, cap[li]) / static_cast<double>(unfixed[li]);
            if (fair < best_fair) {
                best_fair = fair;
                best_link = l;
            }
        }
        if (best_link == kInvalidId) {
            // Remaining flows saw no constraining link; treat as idle.
            for (FlowState *f : runnable) {
                if (f->baseRate < 0.0) {
                    f->baseRate = 0.0;
                    ++fixed_count;
                }
            }
            break;
        }

        for (FlowState *f : members[static_cast<std::size_t>(best_link)]) {
            if (f->baseRate >= 0.0)
                continue; // already fixed
            ++fixed_count;
            f->baseRate = best_fair;
            work += f->route.links.size();
            for (LinkId l : f->route.links) {
                auto li = static_cast<std::size_t>(l);
                cap[li] -= best_fair;
                --unfixed[li];
            }
        }
    }
    lastRecomputeOps_ = work;
    recomputeOps_ += work;

    // Component post-pass: link allocation totals + congestion flags.
    for (FlowState *f : runnable) {
        for (LinkId l : f->route.links)
            linkAlloc_[static_cast<std::size_t>(l)] += f->baseRate;
    }
    for (int l : activeLinks) {
        auto li = static_cast<std::size_t>(l);
        const double c = topo_.link(l).effectiveCapacity();
        linkCongested_[li] =
            c > 0.0 && linkAlloc_[li] >= kCongestedFraction * c;
    }

    // DCQCN overlay: CNP rates and sender-side jitter. Deliberately a
    // *global* pass even in incremental mode — it models the ongoing
    // per-recompute CNP cadence, it is O(active flows) (never the
    // bottleneck the filling loop was), and walking every active flow
    // in flow-table order consumes the RNG stream exactly as the
    // historical full rebuild did, keeping golden CSVs byte-identical.
    for (auto &[id, flow] : flows_) {
        if (flow.stalled || !flow.route.valid() ||
            flow.remaining <= kByteEpsilon) {
            continue; // kept at zero rate by the refill invariants
        }
        double overload = 0.0;
        bool congested = false;
        for (LinkId l : flow.route.links) {
            auto li = static_cast<std::size_t>(l);
            if (linkCongested_[li]) {
                congested = true;
                overload = std::max(overload, linkDemand_[li] - 1.0);
            }
        }
        flow.rate = flow.baseRate;
        if (congested) {
            flow.cnpRate =
                cfg_.cnpRatePerOverload * std::max(0.0, overload) *
                (1.0 + cfg_.cnpNoise * (2.0 * rng_.uniform() - 1.0));
            if (cfg_.congestionJitter) {
                // DCQCN rate reduction has a per-QP persistent bias
                // (each sender's CNP cadence differs) plus temporal
                // noise; the bias is what spreads task averages apart
                // in the paper's Fig. 10b. Explicit-route flows (C4P
                // probers) have no request, so their bias derives
                // from the flow id — a shared flowLabel of 0 would
                // give every prober the identical persistent bias.
                const std::uint32_t ident =
                    flow.hasReq
                        ? flow.req.flowLabel
                        : static_cast<std::uint32_t>(
                              static_cast<std::uint64_t>(flow.id) *
                              0x9E3779B97F4A7C15ull >>
                              32);
                std::uint32_t h = ident * 0x9E3779B9u + 0x7F;
                h ^= h >> 15;
                h *= 0x85EBCA6Bu;
                h ^= h >> 13;
                const double stable =
                    static_cast<double>(h % 1024u) / 1023.0;
                const double u =
                    0.5 * stable + 0.5 * rng_.uniform();
                flow.rate = flow.baseRate * (1.0 - cfg_.jitterMax * u);
            }
        } else {
            flow.cnpRate = 0.0;
        }
    }

    // Rebuild the per-(node, nic) CNP aggregate so nicCnpRate() is a
    // lookup instead of an O(flows) scan per polled NIC.
    nicCnp_.clear();
    for (const auto &[id, flow] : flows_) {
        if (!flow.hasReq || flow.cnpRate <= 0.0)
            continue;
        if (flow.stalled || !flow.route.valid() ||
            flow.remaining <= kByteEpsilon)
            continue;
        nicCnp_[nicKey(flow.req.srcNode, flow.req.srcNic)] +=
            flow.cnpRate;
    }

    if (tr.wants(trace::EventKind::RecomputeEnd)) {
        trace::Event tev;
        tev.when = sim_.now();
        tev.kind = trace::EventKind::RecomputeEnd;
        tev.a = static_cast<std::int64_t>(runnable.size());
        tev.b = static_cast<std::int64_t>(activeLinks.size());
        tev.value = static_cast<double>(work);
        tr.record(std::move(tev));
    }

    obs::MetricsScope &mx = sim_.metrics();
    if (mx.attached()) {
        mx.count("fabric.recomputes");
        mx.count("fabric.recompute_ops",
                 static_cast<std::int64_t>(work));
        // Dirty-component size: flows the incremental recompute had
        // to touch this pass (the whole point of PR 6's scoping).
        mx.observe("fabric.component_flows",
                   static_cast<double>(runnable.size()));
        mx.observe("fabric.component_links",
                   static_cast<double>(activeLinks.size()));
    }

    // Schedule the next completion (a global scan: any flow's rate may
    // have changed through the jitter overlay).
    if (completionEvent_ != kInvalidEvent) {
        sim_.cancel(completionEvent_);
        completionEvent_ = kInvalidEvent;
    }
    Time next = kTimeNever;
    const double horizon = static_cast<double>(kTimeNever - sim_.now());
    for (auto &[id, flow] : flows_) {
        if (flow.rate <= 0.0 || flow.stalled || !flow.route.valid() ||
            flow.remaining <= kByteEpsilon)
            continue;
        const double delay_ns =
            flow.remaining * 8.0 / flow.rate * 1e9;
        // A flow squeezed to a near-zero fair share finishes beyond
        // the representable horizon; casting that to Duration would
        // overflow int64 (UB). It is effectively stalled: schedule
        // nothing and let the next allocation change revisit it.
        if (!(delay_ns < horizon))
            continue;
        const Time t =
            sim_.now() +
            std::max<Duration>(1, static_cast<Duration>(delay_ns));
        next = std::min(next, t);
    }
    // Flows that were already at (or below) epsilon complete now.
    for (auto &[id, flow] : flows_) {
        if (flow.remaining <= kByteEpsilon) {
            next = sim_.now();
            break;
        }
    }
    if (next != kTimeNever) {
        completionEvent_ =
            sim_.scheduleAt(next, [this] { onCompletionEvent(); });
    }
}

void
Fabric::onCompletionEvent()
{
    completionEvent_ = kInvalidEvent;
    advanceProgress();

    std::vector<FlowState> done;
    for (auto it = flows_.begin(); it != flows_.end();) {
        if (it->second.remaining <= kByteEpsilon) {
            dropFlowLinks(it->second);
            done.push_back(std::move(it->second));
            it = flows_.erase(it);
        } else {
            ++it;
        }
    }
    completed_ += done.size();

    markDirty();

    // Invoke callbacks last: they commonly start the next round's flows,
    // which fold into the already-scheduled deferred recompute.
    for (auto &flow : done) {
        if (flow.done) {
            FlowEnd end;
            end.id = flow.id;
            end.startTime = flow.startTime;
            end.endTime = sim_.now();
            end.bytes = flow.total;
            flow.done(end);
        }
    }
}

std::size_t
Fabric::activeFlowCount() const
{
    return flows_.size();
}

bool
Fabric::flowActive(FlowId id) const
{
    return flows_.count(id) > 0;
}

Bandwidth
Fabric::flowRate(FlowId id)
{
    flush();
    auto it = flows_.find(id);
    return it == flows_.end() ? 0.0 : it->second.rate;
}

const Route *
Fabric::flowRoute(FlowId id) const
{
    auto it = flows_.find(id);
    return it == flows_.end() ? nullptr : &it->second.route;
}

Bytes
Fabric::flowRemaining(FlowId id)
{
    flush();
    advanceProgress();
    auto it = flows_.find(id);
    return it == flows_.end()
               ? 0
               : static_cast<Bytes>(std::ceil(it->second.remaining));
}

Bandwidth
Fabric::linkThroughput(LinkId id)
{
    if (id < 0 || static_cast<std::size_t>(id) >= topo_.numLinks())
        return 0.0;
    flush();
    return linkAlloc_[static_cast<std::size_t>(id)];
}

bool
Fabric::linkCongested(LinkId id)
{
    if (id < 0 || static_cast<std::size_t>(id) >= topo_.numLinks())
        return false;
    flush();
    return linkCongested_[static_cast<std::size_t>(id)];
}

double
Fabric::linkDemandRatio(LinkId id)
{
    if (id < 0 || static_cast<std::size_t>(id) >= topo_.numLinks())
        return 0.0;
    flush();
    return linkDemand_[static_cast<std::size_t>(id)];
}

double
Fabric::nicCnpRate(NodeId node, NicId nic)
{
    flush();
    auto it = nicCnp_.find(nicKey(node, nic));
    return it == nicCnp_.end() ? 0.0 : it->second;
}

} // namespace c4::net
