#include "net/fabric.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/log.h"

namespace c4::net {

namespace {

/** Flows with fewer remaining bytes than this are complete. */
constexpr double kByteEpsilon = 0.5;

/** A link allocated beyond this fraction of capacity is congested. */
constexpr double kCongestedFraction = 0.999;

/** Key of the per-(sender node, NIC) CNP aggregate map. */
std::uint64_t
nicKey(NodeId node, NicId nic)
{
    return (static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(node))
            << 32) |
           static_cast<std::uint32_t>(nic);
}

} // namespace

Fabric::Fabric(Simulator &sim, Topology &topo, FabricConfig cfg,
               std::uint64_t seed)
    : sim_(sim), topo_(topo), selector_(topo), cfg_(cfg), rng_(seed),
      linkAlloc_(topo.numLinks(), 0.0),
      linkDemand_(topo.numLinks(), 0.0),
      linkCongested_(topo.numLinks(), false),
      scratchMembers_(topo.numLinks()),
      scratchCap_(topo.numLinks(), 0.0),
      scratchUnfixed_(topo.numLinks(), 0)
{
}

FlowId
Fabric::admit(FlowState state)
{
    state.id = nextFlowId_++;
    state.startTime = sim_.now();
    const FlowId id = state.id;
    flows_.emplace(id, std::move(state));
    ++started_;
    markDirty();
    return id;
}

FlowId
Fabric::startFlow(const PathRequest &req, Bytes bytes, FlowCallback done)
{
    assert(bytes > 0);
    FlowState st;
    st.req = req;
    st.hasReq = true;
    st.route = selector_.select(req);
    st.remaining = static_cast<double>(bytes);
    st.total = bytes;
    st.done = std::move(done);
    if (!st.route.valid()) {
        logDebug("fabric", "flow admitted stalled (no healthy path) "
                 "src=n%d dst=n%d", req.srcNode, req.dstNode);
    }
    return admit(std::move(st));
}

FlowId
Fabric::startFlowOnRoute(Route route, Bytes bytes, FlowCallback done)
{
    assert(bytes > 0);
    FlowState st;
    st.route = std::move(route);
    st.remaining = static_cast<double>(bytes);
    st.total = bytes;
    st.done = std::move(done);
    return admit(std::move(st));
}

bool
Fabric::abortFlow(FlowId id)
{
    flush();
    const bool existed = flows_.erase(id) > 0;
    if (existed)
        markDirty();
    return existed;
}

void
Fabric::stallFlow(FlowId id)
{
    flush();
    auto it = flows_.find(id);
    if (it == flows_.end())
        return;
    it->second.stalled = true;
    markDirty();
}

void
Fabric::resumeFlow(FlowId id)
{
    flush();
    auto it = flows_.find(id);
    if (it == flows_.end())
        return;
    it->second.stalled = false;
    markDirty();
}

void
Fabric::setLinkUp(LinkId id, bool up)
{
    flush();
    if (topo_.link(id).up == up)
        return;
    topo_.setLinkUp(id, up);
    const std::size_t touched =
        up ? reresolveStalledFlows() : rerouteFlowsTouching(id);
    trace::TraceScope &tr = sim_.tracer();
    if (tr.wants(trace::EventKind::PathRealloc)) {
        trace::Event tev;
        tev.when = sim_.now();
        tev.kind = trace::EventKind::PathRealloc;
        tev.a = id;
        tev.b = up ? 1 : 0;
        tev.value = static_cast<double>(touched);
        tev.detail = up ? "link_up" : "link_down";
        tr.record(std::move(tev));
    }
    markDirty();
}

void
Fabric::setLinkCapacityScale(LinkId id, double scale)
{
    flush();
    topo_.setLinkCapacityScale(id, scale);
    markDirty();
}

std::size_t
Fabric::rerouteFlowsTouching(LinkId id)
{
    std::size_t touched = 0;
    for (auto &[fid, flow] : flows_) {
        const auto &links = flow.route.links;
        if (std::find(links.begin(), links.end(), id) == links.end())
            continue;
        ++touched;
        if (flow.hasReq) {
            // ECMP rehash among the surviving next hops: deterministic
            // per flow, so rerouted flows can concentrate (Fig. 13a).
            flow.route = selector_.select(flow.req);
        } else {
            flow.route = Route{}; // explicit route died with the link
        }
    }
    return touched;
}

std::size_t
Fabric::reresolveStalledFlows()
{
    std::size_t touched = 0;
    for (auto &[fid, flow] : flows_) {
        if (!flow.route.valid() && flow.hasReq) {
            ++touched;
            flow.route = selector_.select(flow.req);
        }
    }
    return touched;
}

void
Fabric::advanceProgress()
{
    const Time now = sim_.now();
    const double dt = toSeconds(now - lastAdvance_);
    if (dt > 0.0) {
        for (auto &[id, flow] : flows_) {
            if (flow.rate > 0.0)
                flow.remaining =
                    std::max(0.0, flow.remaining - flow.rate * dt / 8.0);
        }
    }
    lastAdvance_ = now;
}

void
Fabric::markDirty()
{
    if (dirty_)
        return;
    dirty_ = true;
    // Defer to the end of the current instant so a batch of flow starts
    // (one collective round) costs a single re-allocation.
    recomputeEvent_ = sim_.scheduleAfter(0, [this] {
        if (dirty_)
            recompute();
    });
}

void
Fabric::flush()
{
    if (dirty_)
        recompute();
}

void
Fabric::recompute()
{
    advanceProgress();
    dirty_ = false;
    if (recomputeEvent_ != kInvalidEvent) {
        sim_.cancel(recomputeEvent_);
        recomputeEvent_ = kInvalidEvent;
    }
    ++reallocations_;

    trace::TraceScope &tr = sim_.tracer();
    if (tr.wants(trace::EventKind::RecomputeBegin)) {
        trace::Event tev;
        tev.when = sim_.now();
        tev.kind = trace::EventKind::RecomputeBegin;
        tev.a = static_cast<std::int64_t>(flows_.size());
        tr.record(std::move(tev));
    }
    // Deterministic work counter: every link scanned by the filling
    // loop and every per-flow route update counts one unit.
    std::uint64_t work = 0;

    // Clear only the state the previous allocation touched.
    for (int l : scratchActiveLinks_) {
        const auto li = static_cast<std::size_t>(l);
        linkAlloc_[li] = 0.0;
        linkDemand_[li] = 0.0;
        linkCongested_[li] = false;
        scratchMembers_[li].clear();
        scratchCap_[li] = 0.0;
        scratchUnfixed_[li] = 0;
    }
    scratchActiveLinks_.clear();
    scratchRunnable_.clear();

    // Gather runnable flows and per-link membership.
    std::vector<FlowState *> &runnable = scratchRunnable_;
    runnable.reserve(flows_.size());
    for (auto &[id, flow] : flows_) {
        flow.rate = 0.0;
        flow.cnpRate = 0.0;
        if (flow.stalled || !flow.route.valid() ||
            flow.remaining <= kByteEpsilon) {
            continue;
        }
        flow.rate = -1.0; // sentinel: not yet fixed by progressive filling
        runnable.push_back(&flow);
    }

    std::vector<std::vector<FlowState *>> &members = scratchMembers_;
    std::vector<double> &cap = scratchCap_;
    std::vector<int> &unfixed = scratchUnfixed_;
    std::vector<int> &activeLinks = scratchActiveLinks_;

    for (FlowState *f : runnable) {
        // Unconstrained demand: what the sender would inject absent
        // congestion control — its NIC port rate (DCQCN senders start
        // at line rate). Downstream links may then be oversubscribed,
        // which is what the CNP model keys off.
        const double desired =
            topo_.link(f->route.links.front()).effectiveCapacity();
        for (LinkId l : f->route.links) {
            auto li = static_cast<std::size_t>(l);
            if (members[li].empty()) {
                activeLinks.push_back(l);
                cap[li] = topo_.link(l).effectiveCapacity();
            }
            members[li].push_back(f);
            ++unfixed[li];
            linkDemand_[li] += desired;
        }
    }
    for (int l : activeLinks) {
        auto li = static_cast<std::size_t>(l);
        const double c = topo_.link(l).effectiveCapacity();
        linkDemand_[li] = c > 0.0 ? linkDemand_[li] / c : 0.0;
    }

    // Progressive filling: repeatedly saturate the most constrained link.
    std::size_t fixed_count = 0;
    while (fixed_count < runnable.size()) {
        double best_fair = std::numeric_limits<double>::infinity();
        int best_link = kInvalidId;
        work += activeLinks.size();
        for (int l : activeLinks) {
            auto li = static_cast<std::size_t>(l);
            if (unfixed[li] <= 0)
                continue;
            const double fair =
                std::max(0.0, cap[li]) / static_cast<double>(unfixed[li]);
            if (fair < best_fair) {
                best_fair = fair;
                best_link = l;
            }
        }
        if (best_link == kInvalidId) {
            // Remaining flows saw no constraining link; treat as idle.
            for (FlowState *f : runnable) {
                if (f->rate < 0.0) {
                    f->rate = 0.0;
                    ++fixed_count;
                }
            }
            break;
        }

        for (FlowState *f : members[static_cast<std::size_t>(best_link)]) {
            if (f->rate >= 0.0)
                continue; // already fixed
            ++fixed_count;
            f->rate = best_fair;
            work += f->route.links.size();
            for (LinkId l : f->route.links) {
                auto li = static_cast<std::size_t>(l);
                cap[li] -= best_fair;
                --unfixed[li];
            }
        }
    }
    lastRecomputeOps_ = work;
    recomputeOps_ += work;

    // Post-pass: link allocation totals, congestion flags, CNP rates,
    // and the DCQCN sender-side jitter.
    for (FlowState *f : runnable) {
        for (LinkId l : f->route.links)
            linkAlloc_[static_cast<std::size_t>(l)] += f->rate;
    }
    for (int l : activeLinks) {
        auto li = static_cast<std::size_t>(l);
        const double c = topo_.link(l).effectiveCapacity();
        linkCongested_[li] =
            c > 0.0 && linkAlloc_[li] >= kCongestedFraction * c;
    }
    for (FlowState *f : runnable) {
        double overload = 0.0;
        bool congested = false;
        for (LinkId l : f->route.links) {
            auto li = static_cast<std::size_t>(l);
            if (linkCongested_[li]) {
                congested = true;
                overload = std::max(overload, linkDemand_[li] - 1.0);
            }
        }
        if (congested) {
            f->cnpRate = cfg_.cnpRatePerOverload * std::max(0.0, overload) *
                         (1.0 + cfg_.cnpNoise * (2.0 * rng_.uniform() - 1.0));
            if (cfg_.congestionJitter) {
                // DCQCN rate reduction has a per-QP persistent bias
                // (each sender's CNP cadence differs) plus temporal
                // noise; the bias is what spreads task averages apart
                // in the paper's Fig. 10b.
                std::uint32_t h = f->req.flowLabel * 0x9E3779B9u + 0x7F;
                h ^= h >> 15;
                h *= 0x85EBCA6Bu;
                h ^= h >> 13;
                const double stable =
                    static_cast<double>(h % 1024u) / 1023.0;
                const double u =
                    0.5 * stable + 0.5 * rng_.uniform();
                f->rate *= 1.0 - cfg_.jitterMax * u;
            }
        }
    }

    // Rebuild the per-(node, nic) CNP aggregate so nicCnpRate() is a
    // lookup instead of an O(flows) scan per polled NIC.
    nicCnp_.clear();
    for (const FlowState *f : runnable) {
        if (f->hasReq && f->cnpRate > 0.0)
            nicCnp_[nicKey(f->req.srcNode, f->req.srcNic)] +=
                f->cnpRate;
    }

    if (tr.wants(trace::EventKind::RecomputeEnd)) {
        trace::Event tev;
        tev.when = sim_.now();
        tev.kind = trace::EventKind::RecomputeEnd;
        tev.a = static_cast<std::int64_t>(runnable.size());
        tev.b = static_cast<std::int64_t>(activeLinks.size());
        tev.value = static_cast<double>(work);
        tr.record(std::move(tev));
    }

    // Schedule the next completion.
    if (completionEvent_ != kInvalidEvent) {
        sim_.cancel(completionEvent_);
        completionEvent_ = kInvalidEvent;
    }
    Time next = kTimeNever;
    for (FlowState *f : runnable) {
        if (f->rate <= 0.0)
            continue;
        const double secs = f->remaining * 8.0 / f->rate;
        const Time t =
            sim_.now() +
            std::max<Duration>(1, static_cast<Duration>(secs * 1e9));
        next = std::min(next, t);
    }
    // Flows that were already at (or below) epsilon complete now.
    for (auto &[id, flow] : flows_) {
        if (flow.remaining <= kByteEpsilon) {
            next = sim_.now();
            break;
        }
    }
    if (next != kTimeNever) {
        completionEvent_ =
            sim_.scheduleAt(next, [this] { onCompletionEvent(); });
    }
}

void
Fabric::onCompletionEvent()
{
    completionEvent_ = kInvalidEvent;
    advanceProgress();

    std::vector<FlowState> done;
    for (auto it = flows_.begin(); it != flows_.end();) {
        if (it->second.remaining <= kByteEpsilon) {
            done.push_back(std::move(it->second));
            it = flows_.erase(it);
        } else {
            ++it;
        }
    }
    completed_ += done.size();

    markDirty();

    // Invoke callbacks last: they commonly start the next round's flows,
    // which fold into the already-scheduled deferred recompute.
    for (auto &flow : done) {
        if (flow.done) {
            FlowEnd end;
            end.id = flow.id;
            end.startTime = flow.startTime;
            end.endTime = sim_.now();
            end.bytes = flow.total;
            flow.done(end);
        }
    }
}

std::size_t
Fabric::activeFlowCount() const
{
    return flows_.size();
}

bool
Fabric::flowActive(FlowId id) const
{
    return flows_.count(id) > 0;
}

Bandwidth
Fabric::flowRate(FlowId id)
{
    flush();
    auto it = flows_.find(id);
    return it == flows_.end() ? 0.0 : it->second.rate;
}

const Route *
Fabric::flowRoute(FlowId id) const
{
    auto it = flows_.find(id);
    return it == flows_.end() ? nullptr : &it->second.route;
}

Bytes
Fabric::flowRemaining(FlowId id)
{
    flush();
    advanceProgress();
    auto it = flows_.find(id);
    return it == flows_.end()
               ? 0
               : static_cast<Bytes>(std::ceil(it->second.remaining));
}

Bandwidth
Fabric::linkThroughput(LinkId id)
{
    flush();
    return linkAlloc_[static_cast<std::size_t>(id)];
}

bool
Fabric::linkCongested(LinkId id)
{
    flush();
    return linkCongested_[static_cast<std::size_t>(id)];
}

double
Fabric::linkDemandRatio(LinkId id)
{
    flush();
    return linkDemand_[static_cast<std::size_t>(id)];
}

double
Fabric::nicCnpRate(NodeId node, NicId nic)
{
    flush();
    auto it = nicCnp_.find(nicKey(node, nic));
    return it == nicCnp_.end() ? 0.0 : it->second;
}

} // namespace c4::net
