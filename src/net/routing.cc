#include "net/routing.h"

#include <cassert>

namespace c4::net {

namespace {

/** 32-bit mix (murmur3 finalizer). */
std::uint32_t
mix32(std::uint32_t h)
{
    h ^= h >> 16;
    h *= 0x85EBCA6Bu;
    h ^= h >> 13;
    h *= 0xC2B2AE35u;
    h ^= h >> 16;
    return h;
}

} // namespace

std::uint32_t
ecmpHash(const PathRequest &req, std::uint32_t salt)
{
    std::uint32_t h = 0x9E3779B9u ^ salt;
    auto fold = [&h](std::uint32_t v) {
        h = mix32(h ^ mix32(v + 0x165667B1u));
    };
    fold(static_cast<std::uint32_t>(req.srcNode));
    fold(static_cast<std::uint32_t>(req.srcNic) << 8);
    fold(static_cast<std::uint32_t>(req.dstNode) << 1);
    fold(static_cast<std::uint32_t>(req.dstNic) << 9);
    fold(static_cast<std::uint32_t>(planeIndex(req.txPlane)) + 77u);
    fold(req.flowLabel);
    return h;
}

PathSelector::PathSelector(const Topology &topo) : topo_(topo)
{
}

std::vector<int>
PathSelector::candidateSpines(int txLeaf, int rxLeaf) const
{
    return topo_.healthySpines(txLeaf, rxLeaf);
}

Route
PathSelector::select(const PathRequest &req, std::uint32_t salt) const
{
    assert(req.srcNode != req.dstNode &&
           "intra-node traffic rides NVLink, not the fabric");

    Route route;

    const int src_seg = topo_.segmentOf(req.srcNode);
    const int dst_seg = topo_.segmentOf(req.dstNode);
    const int tx_leaf = topo_.leafIndex(src_seg, req.txPlane);

    // Decide the landing plane: pinned by C4P, otherwise hashed.
    Plane rx_plane;
    if (req.rxPlane != kInvalidId) {
        rx_plane = planeFromIndex(static_cast<int>(req.rxPlane));
    } else {
        rx_plane = planeFromIndex(
            static_cast<int>(ecmpHash(req, salt ^ 0xA5A5A5A5u) % 2));
    }

    const LinkId host_up =
        topo_.hostUplink(req.srcNode, req.srcNic, req.txPlane);
    if (!topo_.link(host_up).up)
        return route; // source port dead: unroutable on this plane

    // Same segment and same plane: turn around at the shared leaf.
    if (src_seg == dst_seg && rx_plane == req.txPlane) {
        const LinkId host_down =
            topo_.hostDownlink(req.dstNode, req.dstNic, rx_plane);
        if (!topo_.link(host_down).up)
            return route;
        route.links = {host_up, host_down};
        route.rxPlane = rx_plane;
        return route;
    }

    // Cross-segment (or cross-plane) traffic transits a spine.
    const int rx_leaf = topo_.leafIndex(dst_seg, rx_plane);

    int spine = kInvalidId;
    if (req.spine != kInvalidId) {
        // Pinned by C4P; honour it only if still healthy.
        if (topo_.link(topo_.trunkUplink(tx_leaf, req.spine)).up &&
            topo_.link(topo_.trunkDownlink(req.spine, rx_leaf)).up) {
            spine = req.spine;
        }
    }
    if (spine == kInvalidId) {
        const auto healthy = topo_.healthySpines(tx_leaf, rx_leaf);
        if (healthy.empty())
            return route;
        spine = healthy[ecmpHash(req, salt) % healthy.size()];
    }

    const LinkId host_down =
        topo_.hostDownlink(req.dstNode, req.dstNic, rx_plane);
    if (!topo_.link(host_down).up)
        return route;

    route.links = {host_up, topo_.trunkUplink(tx_leaf, spine),
                   topo_.trunkDownlink(spine, rx_leaf), host_down};
    route.spine = spine;
    route.rxPlane = rx_plane;
    return route;
}

} // namespace c4::net
