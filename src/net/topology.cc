#include "net/topology.h"

#include <cassert>
#include <cstdio>
#include <stdexcept>

namespace c4::net {

const char *
planeName(Plane p)
{
    return p == Plane::Left ? "left" : "right";
}

const char *
linkKindName(LinkKind kind)
{
    switch (kind) {
      case LinkKind::HostUp:    return "host-up";
      case LinkKind::HostDown:  return "host-down";
      case LinkKind::TrunkUp:   return "trunk-up";
      case LinkKind::TrunkDown: return "trunk-down";
    }
    return "?";
}

void
LinkMembershipIndex::add(LinkId link, std::int64_t member)
{
    assert(link >= 0 &&
           static_cast<std::size_t>(link) < members_.size());
    members_[static_cast<std::size_t>(link)].push_back(member);
}

void
LinkMembershipIndex::remove(LinkId link, std::int64_t member)
{
    assert(link >= 0 &&
           static_cast<std::size_t>(link) < members_.size());
    auto &v = members_[static_cast<std::size_t>(link)];
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (v[i] == member) {
            v[i] = v.back();
            v.pop_back();
            return;
        }
    }
}

std::string
TopologyConfig::validate() const
{
    if (numNodes <= 0)
        return "numNodes must be positive";
    if (gpusPerNode <= 0)
        return "gpusPerNode must be positive";
    if (nicsPerNode <= 0)
        return "nicsPerNode must be positive";
    if (gpusPerNode % nicsPerNode != 0)
        return "gpusPerNode must be a multiple of nicsPerNode";
    if (nodesPerSegment <= 0)
        return "nodesPerSegment must be positive";
    if (numSpines <= 0)
        return "numSpines must be positive";
    if (portBandwidth <= 0.0)
        return "portBandwidth must be positive";
    if (oversubscription < 1.0)
        return "oversubscription must be >= 1.0";
    if (nvlinkBusBandwidth <= 0.0)
        return "nvlinkBusBandwidth must be positive";
    return {};
}

Topology::Topology(const TopologyConfig &config) : config_(config)
{
    const std::string err = config_.validate();
    if (!err.empty())
        throw std::invalid_argument("TopologyConfig: " + err);

    numSegments_ =
        (config_.numNodes + config_.nodesPerSegment - 1) /
        config_.nodesPerSegment;

    buildHostLinks();
    buildTrunkLinks();
}

int
Topology::segmentOf(NodeId node) const
{
    assert(node >= 0 && node < config_.numNodes);
    return node / config_.nodesPerSegment;
}

int
Topology::leafIndex(int segment, Plane plane) const
{
    assert(segment >= 0 && segment < numSegments_);
    return segment * kNumPlanes + planeIndex(plane);
}

int
Topology::leafSegment(int leaf) const
{
    assert(leaf >= 0 && leaf < numLeaves());
    return leaf / kNumPlanes;
}

Plane
Topology::leafPlane(int leaf) const
{
    assert(leaf >= 0 && leaf < numLeaves());
    return planeFromIndex(leaf % kNumPlanes);
}

std::size_t
Topology::hostLinkIndex(NodeId node, NicId nic, Plane plane) const
{
    assert(node >= 0 && node < config_.numNodes);
    assert(nic >= 0 && nic < config_.nicsPerNode);
    return (static_cast<std::size_t>(node) * config_.nicsPerNode + nic) *
               kNumPlanes +
           planeIndex(plane);
}

LinkId
Topology::hostUplink(NodeId node, NicId nic, Plane plane) const
{
    return hostUp_[hostLinkIndex(node, nic, plane)];
}

LinkId
Topology::hostDownlink(NodeId node, NicId nic, Plane plane) const
{
    return hostDown_[hostLinkIndex(node, nic, plane)];
}

LinkId
Topology::trunkUplink(int leaf, int spine) const
{
    assert(leaf >= 0 && leaf < numLeaves());
    assert(spine >= 0 && spine < config_.numSpines);
    return trunkUp_[static_cast<std::size_t>(leaf) * config_.numSpines +
                    spine];
}

LinkId
Topology::trunkDownlink(int spine, int leaf) const
{
    assert(leaf >= 0 && leaf < numLeaves());
    assert(spine >= 0 && spine < config_.numSpines);
    return trunkDown_[static_cast<std::size_t>(spine) * numLeaves() + leaf];
}

const Link &
Topology::link(LinkId id) const
{
    assert(id >= 0 && static_cast<std::size_t>(id) < links_.size());
    return links_[static_cast<std::size_t>(id)];
}

Link &
Topology::link(LinkId id)
{
    assert(id >= 0 && static_cast<std::size_t>(id) < links_.size());
    return links_[static_cast<std::size_t>(id)];
}

void
Topology::setLinkUp(LinkId id, bool up)
{
    link(id).up = up;
}

void
Topology::setLinkCapacityScale(LinkId id, double scale)
{
    assert(scale > 0.0 && scale <= 1.0);
    link(id).capacityScale = scale;
}

std::vector<int>
Topology::healthySpines(int txLeaf, int rxLeaf) const
{
    std::vector<int> out;
    out.reserve(static_cast<std::size_t>(config_.numSpines));
    for (int s = 0; s < config_.numSpines; ++s) {
        if (link(trunkUplink(txLeaf, s)).up &&
            link(trunkDownlink(s, rxLeaf)).up) {
            out.push_back(s);
        }
    }
    return out;
}

LinkId
Topology::addLink(Link l)
{
    l.id = static_cast<LinkId>(links_.size());
    links_.push_back(std::move(l));
    return links_.back().id;
}

void
Topology::buildHostLinks()
{
    const std::size_t host_slots =
        static_cast<std::size_t>(config_.numNodes) * config_.nicsPerNode *
        kNumPlanes;
    hostUp_.assign(host_slots, kInvalidId);
    hostDown_.assign(host_slots, kInvalidId);

    char name[96];
    for (NodeId n = 0; n < config_.numNodes; ++n) {
        const int seg = segmentOf(n);
        for (NicId k = 0; k < config_.nicsPerNode; ++k) {
            for (int pi = 0; pi < kNumPlanes; ++pi) {
                const Plane plane = planeFromIndex(pi);
                const int leaf = leafIndex(seg, plane);

                Link up;
                up.kind = LinkKind::HostUp;
                up.capacity = config_.portBandwidth;
                up.node = n;
                up.nic = k;
                up.plane = plane;
                up.leaf = leaf;
                std::snprintf(name, sizeof(name),
                              "n%d.nic%d.%s->leaf%d", n, k,
                              planeName(plane), leaf);
                up.name = name;
                hostUp_[hostLinkIndex(n, k, plane)] = addLink(up);

                Link down = up;
                down.kind = LinkKind::HostDown;
                std::snprintf(name, sizeof(name),
                              "leaf%d->n%d.nic%d.%s", leaf, n, k,
                              planeName(plane));
                down.name = name;
                hostDown_[hostLinkIndex(n, k, plane)] = addLink(down);
            }
        }
    }
}

void
Topology::buildTrunkLinks()
{
    // Each trunk models one uplink-port slice of the leaf->spine bundle.
    // The collective model sends a node's boundary traffic through one
    // active bonded NIC pair (one port per plane), so the matching
    // fat-tree slice gives every spine a trunk of one port's capacity;
    // oversubscription thins it. This preserves the real collision
    // economics (k flows hashed onto one uplink port share it k-ways)
    // without simulating all 8 physical rails.
    const Bandwidth trunk_cap =
        config_.portBandwidth / config_.oversubscription;

    trunkUp_.assign(
        static_cast<std::size_t>(numLeaves()) * config_.numSpines,
        kInvalidId);
    trunkDown_.assign(
        static_cast<std::size_t>(config_.numSpines) * numLeaves(),
        kInvalidId);

    char name[96];
    for (int leaf = 0; leaf < numLeaves(); ++leaf) {
        for (int s = 0; s < config_.numSpines; ++s) {
            Link up;
            up.kind = LinkKind::TrunkUp;
            up.capacity = trunk_cap;
            up.leaf = leaf;
            up.spine = s;
            std::snprintf(name, sizeof(name), "leaf%d->spine%d", leaf, s);
            up.name = name;
            trunkUp_[static_cast<std::size_t>(leaf) * config_.numSpines +
                     s] = addLink(up);

            Link down = up;
            down.kind = LinkKind::TrunkDown;
            std::snprintf(name, sizeof(name), "spine%d->leaf%d", s, leaf);
            down.name = name;
            trunkDown_[static_cast<std::size_t>(s) * numLeaves() + leaf] =
                addLink(down);
        }
    }
}

std::string
Topology::summary() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%d nodes x %d GPUs, %d segments, %d leaves, %d spines, "
                  "port %.0f Gbps, oversub %.1f:1",
                  config_.numNodes, config_.gpusPerNode, numSegments_,
                  numLeaves(), config_.numSpines,
                  toGbps(config_.portBandwidth), config_.oversubscription);
    return buf;
}

} // namespace c4::net
