/**
 * @file
 * Flow-level (fluid) fabric simulator.
 *
 * Flows are (route, bytes) pairs. At any instant, active flow rates are
 * the max-min fair allocation over directed link capacities (progressive
 * filling). The engine is event driven: it advances to the next flow
 * completion; starting/aborting a flow, failing a link, or scaling a
 * link's capacity triggers re-allocation.
 *
 * This granularity is exactly what C4 observes in production: message
 * completion times, per-port throughput, and CNP (Congestion Notification
 * Packet) rates. A DCQCN-style congestion model overlays the fair-share
 * allocation: flows crossing saturated links receive CNPs and exhibit a
 * small sender-side rate fluctuation (paper Fig. 11's 12.5-17.5 kp/s band
 * and Fig. 10b's residual spread).
 *
 * Re-allocation is *incremental*: the fabric tracks dirty links (link
 * up/down, capacity scaling, membership changes from flow
 * start/end/abort/stall) and re-runs progressive filling only over the
 * connected component of flows reachable from dirty links through
 * shared-link membership. Progressive filling couples flows only
 * through shared links, so components fill independently and the
 * component-scoped result is exactly the global one; flows outside the
 * component keep their fair-share rates and link allocations. The
 * stochastic DCQCN overlay (CNP noise + sender jitter) remains a cheap
 * global pass so its RNG stream — and therefore every existing golden
 * CSV — is byte-identical to the historical full-rebuild allocator.
 * Set FabricConfig::incrementalRecompute = false to force the old
 * every-flow rebuild (the shadow reference for equivalence tests).
 */

#ifndef C4_NET_FABRIC_H
#define C4_NET_FABRIC_H

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "net/routing.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace c4::net {

/** Tunables of the congestion / CNP overlay. */
struct FabricConfig
{
    /**
     * Enable DCQCN-style sender rate fluctuation on congested paths.
     * Off, the allocation is the pure max-min fair share.
     */
    bool congestionJitter = true;

    /** Max fractional rate reduction due to congestion control. */
    double jitterMax = 0.06;

    /**
     * CNPs per second delivered to a flow per unit of overload
     * (demand/capacity - 1) on its bottleneck link. A bonded port
     * carries one flow per plane, so 7500 per flow puts the Fig. 10b/11
     * setup at ~15 kp/s per port (the paper's 12.5-17.5 band).
     */
    double cnpRatePerOverload = 7500.0;

    /** Multiplicative noise applied to CNP rates on each re-allocation. */
    double cnpNoise = 0.15;

    /**
     * Scope progressive filling to the dirty-link connected component
     * (see the file header). Off, every recompute rebuilds all flows —
     * the historical behaviour, kept as the equivalence-test shadow.
     * Both modes produce identical allocations.
     */
    bool incrementalRecompute = true;

    /**
     * Coalesce window for link events (up/down, capacity scaling):
     * instead of re-allocating at the same instant, the recompute is
     * deferred by this much so a storm of link events inside the
     * window costs a single re-fill. 0 (the default) re-allocates
     * immediately, exactly as before. Flow events (start/completion/
     * abort/stall) always recompute immediately; a query (flush)
     * forces consistency regardless. With a nonzero window, flows keep
     * progressing at their pre-event rates until the deferred
     * recompute fires — an explicit modelling tradeoff for fault
     * storms, not a default.
     */
    Duration coalesceWindow = 0;
};

/** Completion notice passed to a flow's callback. */
struct FlowEnd
{
    FlowId id = kInvalidId;
    Time startTime = 0;
    Time endTime = 0;
    Bytes bytes = 0;

    Duration duration() const { return endTime - startTime; }

    /** Achieved goodput in bits/s. */
    Bandwidth
    achievedRate() const
    {
        const Duration d = duration();
        return d > 0 ? static_cast<double>(bytes) * 8.0 /
                           toSeconds(d)
                     : 0.0;
    }
};

using FlowCallback = std::function<void(const FlowEnd &)>;

/**
 * The fluid flow engine. Owns no topology; mutates only link state via
 * the Topology reference (on behalf of callers) and its own flow table.
 */
class Fabric
{
  public:
    /**
     * @param sim event engine (must outlive the fabric)
     * @param topo wiring; the fabric registers no callbacks, callers must
     *        route link failures through Fabric::setLinkUp so flows reroute
     * @param cfg congestion model tunables
     * @param seed RNG stream for jitter/CNP noise
     */
    Fabric(Simulator &sim, Topology &topo, FabricConfig cfg = {},
           std::uint64_t seed = 0xC4C4C4C4ull);

    Fabric(const Fabric &) = delete;
    Fabric &operator=(const Fabric &) = delete;

    /**
     * Start a flow described by a routing request. The route is resolved
     * immediately; if no healthy path exists the flow is admitted in a
     * stalled state (rate 0) and will be re-resolved when link state
     * changes — mirroring an RDMA QP retrying on a black-holed path.
     *
     * @return the flow id (always valid).
     */
    FlowId startFlow(const PathRequest &req, Bytes bytes,
                     FlowCallback done);

    /** Start a flow on an explicit route (used by the C4P path prober). */
    FlowId startFlowOnRoute(Route route, Bytes bytes, FlowCallback done);

    /**
     * Abort a flow; its callback is not invoked.
     * @return true if the flow existed.
     */
    bool abortFlow(FlowId id);

    /** Force a flow's rate to zero (fault injection: ACK timeout). */
    void stallFlow(FlowId id);

    /** Undo stallFlow. */
    void resumeFlow(FlowId id);

    /**
     * Bring a link up/down. Downing reroutes affected flows via ECMP
     * rehash among survivors (or stalls them when no path remains);
     * restoring re-resolves all request-backed flows, so flows that
     * were rehashed onto survivors during the outage rebalance back
     * once the link heals (the paper's Fig. 12/13 recovery).
     */
    void setLinkUp(LinkId id, bool up);

    /** Degrade (or restore) a link's capacity; flows keep their routes. */
    void setLinkCapacityScale(LinkId id, double scale);

    /** @name Introspection (forces a consistent allocation first) @{ */
    std::size_t activeFlowCount() const;
    bool flowActive(FlowId id) const;
    Bandwidth flowRate(FlowId id);
    const Route *flowRoute(FlowId id) const;
    Bytes flowRemaining(FlowId id);

    /** Instantaneous allocated rate through a link (0 if @p id is
     * out of range). */
    Bandwidth linkThroughput(LinkId id);

    /** True if the link is allocated to (nearly) full capacity
     * (false if @p id is out of range). */
    bool linkCongested(LinkId id);

    /** Sum of flows' unconstrained demands divided by capacity
     * (0 if @p id is out of range). */
    double linkDemandRatio(LinkId id);

    /**
     * CNPs per second currently delivered to the sender-side bonded port
     * (NIC) — the paper's Fig. 11 metric. Aggregates both planes.
     * O(1): served from a per-(node, nic) aggregate maintained by
     * recompute(), so C4D-style polling of every NIC stays cheap.
     */
    double nicCnpRate(NodeId node, NicId nic);

    std::uint64_t totalFlowsCompleted() const { return completed_; }
    std::uint64_t totalFlowsStarted() const { return started_; }
    std::uint64_t reallocationCount() const { return reallocations_; }

    /**
     * Deterministic cost model of recompute(): progressive-filling
     * work units (link scans + per-flow route updates) accumulated
     * over all re-allocations. Seed-stable — unlike wall clock — so
     * it can gate regressions and feed trace events. With incremental
     * recompute the counter only accrues component-scoped work, which
     * is exactly the asymptotic win the fabric_recompute_ops golden
     * CSV locks in.
     */
    std::uint64_t recomputeOpsTotal() const { return recomputeOps_; }

    /** Work units of the most recent recompute() alone. */
    std::uint64_t recomputeOpsLast() const { return lastRecomputeOps_; }
    /** @} */

    const Topology &topology() const { return topo_; }
    Simulator &simulator() { return sim_; }

  private:
    struct FlowState
    {
        FlowId id = kInvalidId;
        PathRequest req;
        bool hasReq = false;
        Route route;
        double remaining = 0.0; // bytes
        Bytes total = 0;
        Time startTime = 0;
        double baseRate = 0.0; // pure fair share, bits/s
        double rate = 0.0;     // post-jitter sending rate, bits/s
        double cnpRate = 0.0;
        bool stalled = false;
        // Component-closure visit stamp; flows whose stamp matches the
        // fabric's current recompute epoch are being re-filled.
        std::uint64_t visitEpoch = 0;
        FlowCallback done;
    };

    Simulator &sim_;
    Topology &topo_;
    PathSelector selector_;
    FabricConfig cfg_;
    Rng rng_;

    std::unordered_map<FlowId, FlowState> flows_;
    FlowId nextFlowId_ = 1;

    // Aggregate CNP rate per sender (node, nic), rebuilt by recompute().
    std::unordered_map<std::uint64_t, double> nicCnp_;

    Time lastAdvance_ = 0;
    bool dirty_ = false;
    Time recomputeDue_ = 0; // when the pending deferred recompute fires
    EventId recomputeEvent_ = kInvalidEvent;
    EventId completionEvent_ = kInvalidEvent;

    // Persistent allocation state: with incremental recompute these
    // survive across re-allocations and only the links of the dirty
    // component are rewritten.
    std::vector<double> linkAlloc_;  // bits/s currently allocated
    std::vector<double> linkDemand_; // demand ratio
    std::vector<bool> linkCongested_;

    // Persistent link -> flow-id membership mirror of every admitted
    // flow's current route; the edge set of the component search.
    LinkMembershipIndex membership_;

    // Dirty-link accumulator between recomputes.
    std::vector<LinkId> dirtyLinks_;
    std::vector<char> linkDirtyFlag_;
    // Escape hatch: force the next recompute to rebuild every flow
    // (equivalent to dirtying all links). Every mutation path dirties
    // its links eagerly, so this stays false in normal operation.
    bool allDirty_ = false;

    // Component-closure stamps (flows carry theirs in FlowState).
    std::uint64_t epoch_ = 0;
    std::vector<std::uint64_t> linkEpoch_;
    std::vector<LinkId> componentLinks_;

    // Reused allocation scratch (recompute runs on every flow event;
    // per-call vector-of-vectors allocation dominated profiles).
    std::vector<std::vector<FlowState *>> scratchMembers_;
    std::vector<double> scratchCap_;
    std::vector<int> scratchUnfixed_;
    std::vector<int> scratchActiveLinks_;
    std::vector<FlowState *> scratchRunnable_;

    std::uint64_t completed_ = 0;
    std::uint64_t started_ = 0;
    std::uint64_t reallocations_ = 0;
    std::uint64_t recomputeOps_ = 0;
    std::uint64_t lastRecomputeOps_ = 0;

    FlowId admit(FlowState state);

    /** Apply elapsed time to flows' remaining bytes. */
    void advanceProgress();

    /**
     * Mark allocation stale and schedule a recompute @p delay from
     * now (0 = end of the current instant). A pending later recompute
     * is pulled forward; an earlier one is kept.
     */
    void markDirty(Duration delay = 0);

    /** Flag one link as needing re-fill at the next recompute. */
    void markLinkDirty(LinkId id);

    /** Point @p flow at @p route, maintaining membership + dirt. */
    void setFlowRoute(FlowState &flow, Route route);

    /** Unregister a departing flow's route links, dirtying them. */
    void dropFlowLinks(FlowState &flow);

    /** Recompute fair-share rates and schedule the next completion. */
    void recompute();

    /** Ensure rates are consistent before a query. */
    void flush();

    /** Fire completions whose remaining bytes reached zero. */
    void onCompletionEvent();

    /** @return the number of flows whose routes were touched. */
    std::size_t rerouteFlowsTouching(LinkId id);
    std::size_t reresolveRequestFlows();
};

} // namespace c4::net

#endif // C4_NET_FABRIC_H
