/**
 * @file
 * Path selection over the dual-plane fat-tree.
 *
 * A flow's route is fully determined by three choices:
 *   1. the Tx plane (which of the source NIC's two bonded ports it leaves),
 *   2. the spine it crosses (for inter-segment traffic),
 *   3. the Rx plane (which leaf — and hence which of the destination NIC's
 *      bonded ports — it lands on).
 *
 * The baseline leaves (2) and (3) to ECMP: switches hash the five-tuple.
 * Since RDMA source ports are drawn at connection setup, this is a uniform
 * random pick among healthy next hops — exactly the behaviour C4P replaces
 * by choosing source ports that steer the hash onto planned paths (paper
 * Section III-B). PathRequest therefore carries optional pinned choices;
 * unset fields fall back to the hash.
 */

#ifndef C4_NET_ROUTING_H
#define C4_NET_ROUTING_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "net/topology.h"

namespace c4::net {

/**
 * Everything needed to route one flow. Pinned fields (spine, rxPlane)
 * override ECMP; flowLabel stands in for the five-tuple entropy (RDMA
 * source port etc.) that the hash consumes.
 */
struct PathRequest
{
    NodeId srcNode = kInvalidId;
    NicId srcNic = kInvalidId;
    NodeId dstNode = kInvalidId;
    NicId dstNic = kInvalidId;

    /** Physical port the flow departs on. */
    Plane txPlane = Plane::Left;

    /** Pinned spine index, or kInvalidId for ECMP. */
    std::int32_t spine = kInvalidId;

    /** Pinned landing plane, or kInvalidId for ECMP. */
    std::int32_t rxPlane = kInvalidId;

    /** Five-tuple entropy consumed by the ECMP hash. */
    std::uint32_t flowLabel = 0;
};

/**
 * Deterministic ECMP hash over flow identity. Models the switch ASIC's
 * hash: the same flow always takes the same path; different flowLabels
 * spread (imperfectly) across choices.
 */
std::uint32_t ecmpHash(const PathRequest &req, std::uint32_t salt = 0);

/** Result of routing a request. */
struct Route
{
    /** Directed links in traversal order; empty when unroutable. */
    std::vector<LinkId> links;

    /** Spine actually crossed, or kInvalidId for leaf-local routes. */
    std::int32_t spine = kInvalidId;

    /** Landing plane actually used. */
    Plane rxPlane = Plane::Left;

    bool valid() const { return !links.empty(); }
};

/**
 * Stateless resolver from PathRequest to a concrete Route given current
 * link health. Does not allocate bandwidth; the Fabric does that.
 */
class PathSelector
{
  public:
    explicit PathSelector(const Topology &topo);

    /**
     * Resolve a request to a route.
     *
     * Intra-node requests are invalid here (they ride NVLink and never
     * enter the fabric). If every candidate spine is unhealthy the route
     * comes back empty and the caller decides whether to stall or retry.
     *
     * @param salt extra hash salt; rerouting after a link failure rehashes
     *             with a new salt, reproducing ECMP's "rehash onto the
     *             survivors" behaviour (paper Fig. 13a).
     */
    Route select(const PathRequest &req, std::uint32_t salt = 0) const;

    /**
     * Enumerate the distinct spine choices currently healthy for a
     * (txLeaf, rxLeaf) pair. Used by the C4P path prober.
     */
    std::vector<int> candidateSpines(int txLeaf, int rxLeaf) const;

  private:
    const Topology &topo_;
};

} // namespace c4::net

#endif // C4_NET_ROUTING_H
