/**
 * @file
 * Dual-plane fat-tree cluster topology, modelled after the paper's testbed:
 * nodes with 8 GPUs and 8 dual-port RDMA NICs; each NIC's two 200 Gbps
 * ports ("left"/"right" planes) connect to a pair of leaf switches; leaves
 * connect to a shared spine layer in a Clos fat-tree with a configurable
 * oversubscription ratio (Section II-D / IV-A of the paper).
 *
 * Nodes are grouped into "segments": all NICs of the nodes in a segment
 * attach to that segment's leaf pair. Traffic between segments must cross
 * a spine; traffic within a segment and plane turns around at the leaf.
 *
 * Every physical cable is represented as two directed Links so that Tx and
 * Rx congestion are independent — this is what lets C4D's delay matrix
 * distinguish "rank 3 Tx slow" from "rank 3 Rx slow" (paper Fig. 7).
 */

#ifndef C4_NET_TOPOLOGY_H
#define C4_NET_TOPOLOGY_H

#include <string>
#include <vector>

#include "common/types.h"

namespace c4::net {

/** Which of a NIC's two bonded physical ports a flow departs/arrives on. */
enum class Plane : std::int8_t { Left = 0, Right = 1 };

constexpr int kNumPlanes = 2;

inline int
planeIndex(Plane p)
{
    return static_cast<int>(p);
}

inline Plane
planeFromIndex(int i)
{
    return i == 0 ? Plane::Left : Plane::Right;
}

const char *planeName(Plane p);

/** Classification of a directed link within the fabric. */
enum class LinkKind : std::int8_t {
    HostUp,   ///< NIC port -> leaf switch
    HostDown, ///< leaf switch -> NIC port
    TrunkUp,  ///< leaf -> spine
    TrunkDown ///< spine -> leaf
};

const char *linkKindName(LinkKind kind);

/**
 * A directed, capacity-limited edge of the fabric. Capacity can be scaled
 * (NIC/PCIe degradation faults) and the link can be administratively or
 * fault downed.
 */
struct Link
{
    LinkId id = kInvalidId;
    LinkKind kind = LinkKind::HostUp;
    std::string name;

    /** Nominal capacity in bits per second. */
    Bandwidth capacity = 0.0;

    /** Degradation multiplier in (0, 1]; applied to capacity. */
    double capacityScale = 1.0;

    bool up = true;

    /** @name Endpoint coordinates (meaning depends on kind) @{ */
    NodeId node = kInvalidId;   ///< Host* kinds: the node
    NicId nic = kInvalidId;     ///< Host* kinds: the NIC
    Plane plane = Plane::Left;  ///< Host* kinds: the port plane
    std::int32_t leaf = kInvalidId;  ///< all kinds: leaf switch index
    std::int32_t spine = kInvalidId; ///< Trunk* kinds: spine index
    /** @} */

    /** Effective capacity accounting for scaling and up/down state. */
    Bandwidth
    effectiveCapacity() const
    {
        return up ? capacity * capacityScale : 0.0;
    }
};

/** Build-time parameters of the cluster fabric. */
struct TopologyConfig
{
    int numNodes = 16;
    int gpusPerNode = 8;
    int nicsPerNode = 8;          ///< one NIC per GPU, as in the testbed
    int nodesPerSegment = 4;      ///< nodes sharing one leaf pair
    int numSpines = 8;
    Bandwidth portBandwidth = gbps(200); ///< per physical NIC port

    /**
     * Downlink:uplink capacity ratio. 1.0 reproduces the testbed's 1:1
     * fat-tree; 2.0 the deliberately congested 2:1 network of Fig. 10b.
     */
    double oversubscription = 1.0;

    /**
     * Bus-bandwidth ceiling imposed by the intra-node NVLink fabric
     * (the paper measures 362 Gbps on H800 nodes).
     */
    Bandwidth nvlinkBusBandwidth = gbps(362);

    /** Validate invariants; returns an error message or empty string. */
    std::string validate() const;
};

/**
 * Persistent link -> member index over a fixed link population.
 *
 * Maps every LinkId to the set of member ids (in practice: the flow
 * ids of the flows routed over the link) so that "who shares this
 * link" is an O(degree) lookup instead of an O(all members) scan.
 * The Fabric maintains one of these alongside its flow table and uses
 * it to scope incremental re-allocation to the connected component of
 * flows reachable from a dirty link.
 *
 * Membership order is not meaningful: removal swap-pops, so callers
 * that need a deterministic order must impose their own (the fabric
 * orders by its flow-table iteration, never by this index).
 */
class LinkMembershipIndex
{
  public:
    explicit LinkMembershipIndex(std::size_t numLinks)
        : members_(numLinks)
    {
    }

    /** Register @p member on @p link. Must not already be present. */
    void add(LinkId link, std::int64_t member);

    /**
     * Unregister @p member from @p link (O(link degree)).
     * A harmless no-op when the pair was never registered.
     */
    void remove(LinkId link, std::int64_t member);

    /** Members currently registered on @p link (unordered). */
    const std::vector<std::int64_t> &
    members(LinkId link) const
    {
        return members_[static_cast<std::size_t>(link)];
    }

    std::size_t
    memberCount(LinkId link) const
    {
        return members_[static_cast<std::size_t>(link)].size();
    }

    std::size_t numLinks() const { return members_.size(); }

  private:
    std::vector<std::vector<std::int64_t>> members_;
};

/**
 * Immutable wiring of the cluster plus mutable per-link state.
 *
 * Construction lays out all links; the only mutations afterwards are link
 * up/down and capacity scaling (driven by the fault injector and by
 * benches that kill uplinks mid-run).
 */
class Topology
{
  public:
    explicit Topology(const TopologyConfig &config);

    const TopologyConfig &config() const { return config_; }

    /** @name Dimensions @{ */
    int numNodes() const { return config_.numNodes; }
    int numGpus() const { return config_.numNodes * config_.gpusPerNode; }
    int gpusPerNode() const { return config_.gpusPerNode; }
    int nicsPerNode() const { return config_.nicsPerNode; }
    int numSegments() const { return numSegments_; }
    int numLeaves() const { return numSegments_ * kNumPlanes; }
    int numSpines() const { return config_.numSpines; }
    std::size_t numLinks() const { return links_.size(); }
    /** @} */

    /** Segment (leaf-pair group) that a node belongs to. */
    int segmentOf(NodeId node) const;

    /** Flat leaf index for (segment, plane). */
    int leafIndex(int segment, Plane plane) const;

    /** Segment of a flat leaf index. */
    int leafSegment(int leaf) const;

    /** Plane of a flat leaf index. */
    Plane leafPlane(int leaf) const;

    /** @name Link lookup @{ */
    LinkId hostUplink(NodeId node, NicId nic, Plane plane) const;
    LinkId hostDownlink(NodeId node, NicId nic, Plane plane) const;
    LinkId trunkUplink(int leaf, int spine) const;
    LinkId trunkDownlink(int spine, int leaf) const;
    /** @} */

    const Link &link(LinkId id) const;
    Link &link(LinkId id);
    const std::vector<Link> &links() const { return links_; }

    /** @name Fault / maintenance operations @{ */
    void setLinkUp(LinkId id, bool up);
    void setLinkCapacityScale(LinkId id, double scale);
    /** @} */

    /**
     * Spines reachable from @p leaf over healthy uplinks.
     * A spine counts as healthy for a (txLeaf, rxLeaf) pair only if both
     * the uplink and the downlink trunks are up.
     */
    std::vector<int> healthySpines(int txLeaf, int rxLeaf) const;

    /** True if the two GPUs' ranks live on the same node. */
    bool
    sameNode(NodeId a, NodeId b) const
    {
        return a == b;
    }

    /** Human-readable one-line summary ("16 nodes, 8 leaves, 8 spines"). */
    std::string summary() const;

  private:
    TopologyConfig config_;
    int numSegments_ = 0;

    std::vector<Link> links_;

    // Lookup tables, indexed as documented in the getters.
    std::vector<LinkId> hostUp_;    // [node][nic][plane]
    std::vector<LinkId> hostDown_;  // [node][nic][plane]
    std::vector<LinkId> trunkUp_;   // [leaf][spine]
    std::vector<LinkId> trunkDown_; // [spine][leaf]

    std::size_t hostLinkIndex(NodeId node, NicId nic, Plane plane) const;

    LinkId addLink(Link link);
    void buildHostLinks();
    void buildTrunkLinks();
};

} // namespace c4::net

#endif // C4_NET_TOPOLOGY_H
