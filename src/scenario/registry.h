/**
 * @file
 * The named-scenario registry. A scenario is a name, a variant-spec
 * factory, and optional presentation hooks; registering one makes it
 * runnable from the unified bench CLI (`c4bench <name>`), listable
 * (`--list`), and sweepable by the ScenarioRunner. Bench drivers are
 * thin translation units holding one `Register` object each.
 */

#ifndef C4_SCENARIO_REGISTRY_H
#define C4_SCENARIO_REGISTRY_H

#include <functional>
#include <string>
#include <vector>

#include "scenario/options.h"
#include "scenario/spec.h"

namespace c4::scenario {

/** A registered, runnable scenario. */
struct Scenario
{
    std::string name;        ///< CLI handle, e.g. "fig9_dualport"
    std::string title;       ///< one-line table title
    std::string description; ///< what the paper shows; printed by --list -v
    std::string notes;       ///< paper-shape commentary after the table

    /** Trials per variant when the CLI does not override. */
    int fullTrials = 1;
    int smokeTrials = 1;

    /**
     * Force the trial sweep onto a single worker regardless of
     * --threads. For scenarios whose metrics are wall-clock timings
     * (micro_core): concurrent trials would measure each other's CPU
     * contention.
     */
    bool serialTrials = false;

    /** Base seed when the CLI does not override. */
    std::uint64_t seed = 0xC4C10C4Dull;

    /**
     * Trial shard: execute only trials [trialBegin, trialBegin +
     * trialCount) of the resolved sweep (trialCount 0 = through the
     * last trial). Trial indices and per-trial seeds stay ABSOLUTE, so
     * a shard's results are byte-identical to the same rows of the
     * unsharded run — the property the c4sweep plan/run/merge pipeline
     * is built on. Set from the `trial_begin` / `trial_count` spec
     * keys; built-in registrations keep the full range.
     */
    int trialBegin = 0;
    int trialCount = 0;

    /**
     * Produce the variant specs for a run. Must be a pure function of
     * the options (the runner may call it more than once).
     */
    std::function<std::vector<ScenarioSpec>(const RunOptions &)> variants;

    /**
     * Optional: derive cross-variant commentary (ratios, paper deltas)
     * from the finished trial results; returned text is printed after
     * the table.
     */
    std::function<std::string(const std::vector<TrialResult> &)>
        summarize;
};

/** Global name -> Scenario registry. */
class Registry
{
  public:
    static Registry &instance();

    /** @throws std::invalid_argument on a duplicate or empty name. */
    void add(Scenario scenario);

    /**
     * Insert a dynamically-built scenario (a spec file loaded from
     * disk), replacing any same-named registration — that is what lets
     * a copy-edited `--dump-spec` output shadow its built-in twin.
     * @return true when an existing scenario was replaced.
     * @throws std::invalid_argument on an empty name or null variants.
     */
    bool addOrReplace(Scenario scenario);

    /** @return the scenario, or nullptr when unknown. */
    const Scenario *find(const std::string &name) const;

    /** All registered scenarios, sorted by name. */
    std::vector<const Scenario *> all() const;

    std::size_t size() const { return scenarios_.size(); }

  private:
    Registry() = default;
    std::vector<Scenario> scenarios_;
};

/** Static-initialization helper: `static Register reg{scenario};`. */
struct Register
{
    explicit Register(Scenario scenario);
};

} // namespace c4::scenario

#endif // C4_SCENARIO_REGISTRY_H
