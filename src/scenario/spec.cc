#include "scenario/spec.h"

#include <set>
#include <sstream>

namespace c4::scenario {

bool
knownModel(const std::string &model)
{
    return model == "gpt22b" || model == "gpt175b" ||
           model == "llama7b" || model == "llama13b";
}

std::string
validateTrialRange(int begin, int count, int totalTrials)
{
    std::ostringstream os;
    if (begin < 0) {
        os << "trial_begin must be >= 0, not " << begin;
        return os.str();
    }
    if (count < 0) {
        os << "trial_count must not be negative (0 means through "
              "the last trial), not "
           << count;
        return os.str();
    }
    if (begin >= totalTrials) {
        os << "trial_begin " << begin << " is out of range for a "
           << totalTrials << "-trial sweep";
        return os.str();
    }
    if (count > 0 && begin + count > totalTrials) {
        os << "trial range [" << begin << ", " << begin + count
           << ") overflows the " << totalTrials << "-trial sweep";
        return os.str();
    }
    return "";
}

namespace {

std::string
err(const ScenarioSpec &spec, const std::string &what)
{
    return "variant '" + spec.variant + "': " + what;
}

} // namespace

std::string
validateSpec(const ScenarioSpec &spec)
{
    if (spec.variant.empty())
        return "spec has an empty variant label";
    if (spec.custom)
        return ""; // custom executors own their configuration

    if (spec.topology.kind == TopologySpec::Kind::Pod &&
        spec.topology.numNodes <= 0) {
        return err(spec, "Pod topology needs numNodes > 0");
    }
    if (spec.topology.oversubscription <= 0.0)
        return err(spec, "oversubscription must be > 0");
    if (spec.topology.nodesPerSegment < 0)
        return err(spec, "nodesPerSegment must be >= 0");
    if (spec.features.qpsPerConnection < 0)
        return err(spec, "qpsPerConnection must be >= 0");
    if (spec.features.backupNodes < 0)
        return err(spec, "backupNodes must be >= 0");
    if (spec.features.backupNodes > 0 && !spec.features.c4d)
        return err(spec, "backup nodes need C4D enabled");
    if (spec.features.fabricCoalesceWindow < 0)
        return err(spec, "fabricCoalesceWindow must be >= 0");

    std::set<JobId> ids;
    for (const JobSpec &job : spec.jobs) {
        if (!knownModel(job.model))
            return err(spec, "unknown model '" + job.model + "'");
        if (!ids.insert(job.id).second) {
            std::ostringstream os;
            os << "duplicate job id " << job.id;
            return err(spec, os.str());
        }
        if (job.parallel.tp < 1 || job.parallel.pp < 1 ||
            job.parallel.dp < 1) {
            return err(spec, "parallel degrees must be >= 1");
        }
        if (job.microBatch < 1)
            return err(spec, "microBatch must be >= 1");
    }
    if (!spec.jobs.empty() && spec.horizon <= 0) {
        return err(spec,
                   "jobs iterate forever; a horizon > 0 is required");
    }

    for (const AllreduceGroupSpec &g : spec.allreduces) {
        if (g.tasks < 1)
            return err(spec, "allreduce group needs tasks >= 1");
        if (g.iterations < 1)
            return err(spec, "allreduce group needs iterations >= 1");
        if (g.bytes == 0)
            return err(spec, "allreduce group needs bytes > 0");
        if (g.placement == AllreduceGroupSpec::Placement::Explicit &&
            g.explicitNodes.size() != static_cast<std::size_t>(g.tasks)) {
            return err(spec, "explicit allreduce placement needs one "
                             "node list per task");
        }
        if (g.placement ==
            AllreduceGroupSpec::Placement::SpreadAcrossSegments) {
            if (g.nodesPerTask < 2)
                return err(spec,
                           "spread allreduce needs nodesPerTask >= 2");
            if (g.tasks != 1)
                return err(spec, "spread allreduce placement supports "
                                 "exactly one task");
        }
    }

    for (const FaultSpec &f : spec.faults) {
        if (f.job == kInvalidId && f.node == kInvalidId)
            return err(spec, "fault needs a job or an absolute node");
        if (f.job != kInvalidId && f.jobNodeIndex < 0)
            return err(spec, "fault jobNodeIndex must be >= 0");
        if (f.severity <= 0.0)
            return err(spec, "fault severity must be > 0");
    }
    if (spec.campaign.enabled && spec.campaign.span <= 0)
        return err(spec, "campaign needs span > 0");

    if (spec.abortAt < 0)
        return err(spec, "abort_at_s must be >= 0");
    if (spec.abortTrial < -1)
        return err(spec, "abort_trial must be >= -1");
    if (spec.abortTrial >= 0 && spec.abortAt <= 0) {
        return err(spec,
                   "abort_trial needs abort_at_s > 0 to take effect");
    }

    if (spec.metrics.detection && !spec.features.c4d)
        return err(spec, "detection metrics need C4D enabled");
    if (spec.metrics.detection && spec.faults.empty())
        return err(spec, "detection metrics need an injected fault");
    if (spec.metrics.cnpSamplePeriod < 0 ||
        spec.metrics.uplinkSamplePeriod < 0) {
        return err(spec, "sampler periods must be >= 0");
    }
    return "";
}

} // namespace c4::scenario
