#include "scenario/sink.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

#include "common/csv.h"
#include "common/table.h"
#include "scenario/registry.h"

namespace c4::scenario {

namespace {

std::string
formatDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        const auto u = static_cast<unsigned char>(c);
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (u < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", u);
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

} // namespace

std::map<std::string, double>
variantMetricMeans(const std::vector<TrialResult> &results,
                   const std::string &metric)
{
    std::map<std::string, std::pair<double, int>> acc;
    for (const TrialResult &r : results) {
        for (const Metric &m : r.metrics) {
            if (m.name == metric) {
                acc[r.variant].first += m.value;
                acc[r.variant].second += 1;
            }
        }
    }
    std::map<std::string, double> means;
    for (const auto &[variant, sum] : acc)
        means[variant] = sum.first / sum.second;
    return means;
}

// --- TableSink --------------------------------------------------------

TableSink::TableSink(std::ostream &out) : out_(out) {}

std::string
TableSink::formatValue(double v)
{
    const double a = std::fabs(v);
    if (a != 0.0 && (a >= 1e6 || a < 1e-3))
        return formatDouble(v);
    if (a >= 100.0)
        return AsciiTable::num(v, 1);
    if (a >= 1.0)
        return AsciiTable::num(v, 2);
    return AsciiTable::num(v, 4);
}

void
TableSink::begin(const Scenario &scenario, const RunOptions &opt)
{
    (void)scenario;
    trials_ = opt.trials;
    results_.clear();
}

void
TableSink::trial(const TrialResult &result)
{
    results_.push_back(result);
}

void
TableSink::end(const Scenario &scenario)
{
    // Column per variant, row per metric (variants are few, metrics
    // can be many — transposed reads better for Fig. 13-style output).
    std::vector<std::string> variants;
    std::vector<std::string> metricNames;
    // (variant, metric) -> running sum/count for the mean.
    std::map<std::pair<std::string, std::string>,
             std::pair<double, int>>
        cells;
    for (const TrialResult &r : results_) {
        if (std::find(variants.begin(), variants.end(), r.variant) ==
            variants.end()) {
            variants.push_back(r.variant);
        }
        for (const Metric &m : r.metrics) {
            if (std::find(metricNames.begin(), metricNames.end(),
                          m.name) == metricNames.end()) {
                metricNames.push_back(m.name);
            }
            auto &cell = cells[{r.variant, m.name}];
            cell.first += m.value;
            cell.second += 1;
        }
    }

    std::vector<std::string> headers;
    headers.push_back("metric");
    for (const std::string &v : variants)
        headers.push_back(v);
    AsciiTable table(headers);
    for (const std::string &name : metricNames) {
        std::vector<std::string> row;
        row.push_back(name);
        for (const std::string &v : variants) {
            auto it = cells.find({v, name});
            row.push_back(it == cells.end() || it->second.second == 0
                              ? "-"
                              : formatValue(it->second.first /
                                            it->second.second));
        }
        table.addRow(row);
    }

    std::string title = scenario.title;
    if (trials_ > 1)
        title += " (mean of " + std::to_string(trials_) + " trials)";
    out_ << table.str(title) << "\n";
    if (!scenario.notes.empty())
        out_ << scenario.notes << "\n";
    if (scenario.summarize) {
        const std::string extra = scenario.summarize(results_);
        if (!extra.empty())
            out_ << extra << "\n";
    }
    out_.flush();
}

// --- CsvSink ----------------------------------------------------------

CsvSink::CsvSink(std::ostream &out) : out_(out) {}

void
CsvSink::begin(const Scenario &scenario, const RunOptions &opt)
{
    (void)scenario;
    (void)opt;
    if (!headerWritten_) {
        CsvWriter w(out_);
        w.header({"scenario", "variant", "trial", "seed", "metric",
                  "value"});
        headerWritten_ = true;
    }
}

void
CsvSink::trial(const TrialResult &result)
{
    CsvWriter w(out_);
    for (const Metric &m : result.metrics) {
        w.cell(result.scenario)
            .cell(result.variant)
            .cell(static_cast<std::int64_t>(result.trial))
            .cell(result.seed)
            .cell(m.name)
            .cell(formatDouble(m.value));
        w.endRow();
    }
    out_.flush();
}

// --- JsonSink ---------------------------------------------------------

JsonSink::JsonSink(std::ostream &out) : out_(out)
{
    out_ << "[";
}

JsonSink::~JsonSink()
{
    out_ << "\n]\n";
    out_.flush();
}

void
JsonSink::begin(const Scenario &scenario, const RunOptions &opt)
{
    if (anyScenario_)
        out_ << ",";
    anyScenario_ = true;
    anyTrial_ = false;
    out_ << "\n  {\"scenario\": \"" << jsonEscape(scenario.name)
         << "\", \"title\": \"" << jsonEscape(scenario.title)
         << "\", \"smoke\": " << (opt.smoke ? "true" : "false")
         << ", \"trials\": " << opt.trials << ", \"results\": [";
}

void
JsonSink::trial(const TrialResult &result)
{
    if (anyTrial_)
        out_ << ",";
    anyTrial_ = true;
    out_ << "\n    {\"variant\": \"" << jsonEscape(result.variant)
         << "\", \"trial\": " << result.trial << ", \"seed\": "
         << result.seed << ", \"metrics\": {";
    bool first = true;
    for (const Metric &m : result.metrics) {
        if (!first)
            out_ << ", ";
        first = false;
        out_ << "\"" << jsonEscape(m.name)
             << "\": " << formatDouble(m.value);
    }
    out_ << "}}";
}

void
JsonSink::end(const Scenario &scenario)
{
    (void)scenario;
    out_ << "\n  ]}";
    out_.flush();
}

} // namespace c4::scenario
