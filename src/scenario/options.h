/**
 * @file
 * Shared run options and per-trial result containers for the scenario
 * engine. Every scenario — paper figure, ablation, or ad-hoc workload —
 * runs under the same RunOptions, so the CLI flags (--smoke, --seed,
 * --trials, --threads, --csv) mean the same thing everywhere.
 */

#ifndef C4_SCENARIO_OPTIONS_H
#define C4_SCENARIO_OPTIONS_H

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "obs/metrics.h"
#include "trace/trace.h"

namespace c4::scenario {

/** Options shared by every scenario run (the unified bench CLI). */
struct RunOptions
{
    /** Seconds-scale pass over the full code path; numbers are NOT
     * paper-comparable. */
    bool smoke = false;

    /** Trials per variant; 0 = the scenario's own default. */
    int trials = 0;

    /** Worker threads for the trial sweep; 0 = hardware concurrency.
     * Results are byte-identical regardless of the thread count. */
    int threads = 0;

    /** Base seed; per-trial seeds are derived deterministically. */
    std::uint64_t seed = 0;
    bool seedSet = false;

    /**
     * Event-trace output directory (`--trace DIR`); empty = tracing
     * off (the default — zero overhead). When set, every (variant,
     * trial) writes a deterministic JSONL trace plus a combined
     * Chrome trace per scenario; the CSV/JSON results are unchanged.
     */
    std::string traceDir;

    /** Which event kinds to record (`--trace-filter k1,k2`). */
    trace::KindMask traceFilter = trace::kAllKinds;

    /**
     * Metric-snapshot output directory (`--metrics DIR`); empty =
     * metrics off (the default — zero overhead). When set, every
     * (variant, trial) samples its registry on a simulated-time
     * cadence and writes a deterministic c4metrics/1 JSONL snapshot;
     * the CSV/JSON results are unchanged.
     */
    std::string metricsDir;

    /** Sampling cadence in simulated time (`--metrics-period S`). */
    Duration metricsPeriod = seconds(1);

    /** The full-fidelity value, or the slashed one in smoke mode. */
    template <typename T>
    T
    pick(T full, T tiny) const
    {
        return smoke ? tiny : full;
    }
};

/** One named measurement produced by a trial. */
struct Metric
{
    std::string name;
    double value = 0.0;
};

/** Everything one (variant, trial) execution produced. */
struct TrialResult
{
    std::string scenario;
    std::string variant;
    int variantIndex = 0;
    int trial = 0;
    std::uint64_t seed = 0;
    std::vector<Metric> metrics;
};

/**
 * Handed to a trial execution; collects metrics. Each trial owns an
 * independent context (and Simulator), so trials may run on parallel
 * workers without synchronization.
 */
class TrialContext
{
  public:
    TrialContext(const RunOptions &opt, std::uint64_t seed, int trial)
        : opt(opt), seed(seed), trial(trial)
    {
    }

    TrialContext(const TrialContext &) = delete;
    TrialContext &operator=(const TrialContext &) = delete;

    const RunOptions &opt;
    const std::uint64_t seed;
    const int trial;

    /**
     * This trial's event recorder, or nullptr when tracing is off.
     * The spec interpreter attaches it to the trial's Simulator
     * (`sim.setTracer(...)`); custom executors that build their own
     * Simulator may do the same to get traced.
     */
    trace::TraceRecorder *tracer = nullptr;

    /**
     * This trial's metric registry, or nullptr when metrics are off.
     * The spec interpreter attaches it to the trial's Simulator
     * (`sim.setMetrics(...)`) and samples it on the metricsPeriod
     * cadence; custom executors may do the same to get sampled.
     */
    obs::MetricRegistry *meter = nullptr;

    /** Record one measurement. Order is preserved into sinks. */
    void
    metric(std::string name, double value)
    {
        metrics_.push_back({std::move(name), value});
    }

    const std::vector<Metric> &metrics() const { return metrics_; }

    template <typename T>
    T
    pick(T full, T tiny) const
    {
        return opt.pick(std::move(full), std::move(tiny));
    }

  private:
    std::vector<Metric> metrics_;
};

/** splitmix64-derived per-trial seed; independent of thread schedule. */
std::uint64_t trialSeed(std::uint64_t base, int trial);

/**
 * variant -> mean of @p metric over that variant's trials. The shared
 * aggregation behind summarize() hooks; variants without the metric
 * are absent from the map.
 */
std::map<std::string, double>
variantMetricMeans(const std::vector<TrialResult> &results,
                   const std::string &metric);

} // namespace c4::scenario

#endif // C4_SCENARIO_OPTIONS_H
