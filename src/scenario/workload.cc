#include "scenario/workload.h"

#include <functional>
#include <memory>
#include <stdexcept>

#include "accl/path_policy.h"
#include "c4d/metrics_sink.h"
#include "common/stats.h"
#include "core/experiment.h"
#include "train/model.h"

namespace c4::scenario {

namespace {

fault::FaultRates
campaignRates(const CampaignSpec &c)
{
    fault::FaultRates rates = c.rates == CampaignSpec::Rates::June2023
                                  ? fault::FaultRates::paperJune2023()
                                  : fault::FaultRates::paperDecember2023();
    return c.scale == 1.0 ? rates : rates.scaled(c.scale);
}

} // namespace

train::ModelConfig
modelByName(const std::string &name)
{
    if (name == "gpt22b")
        return train::gpt22b();
    if (name == "gpt175b")
        return train::gpt175b();
    if (name == "llama7b")
        return train::llama7b();
    if (name == "llama13b")
        return train::llama13b();
    throw std::invalid_argument("unknown model '" + name + "'");
}

core::ClusterConfig
toClusterConfig(const ScenarioSpec &spec, std::uint64_t seed)
{
    const TopologySpec &t = spec.topology;
    core::ClusterConfig cc;
    cc.topology = t.kind == TopologySpec::Kind::Testbed
                      ? core::paperTestbed(t.oversubscription)
                      : core::productionPod(t.numNodes,
                                            t.oversubscription);
    if (t.nodesPerSegment > 0)
        cc.topology.nodesPerSegment = t.nodesPerSegment;
    if (t.nvlinkBusBandwidth > 0)
        cc.topology.nvlinkBusBandwidth = t.nvlinkBusBandwidth;

    const FeatureSpec &f = spec.features;
    cc.enableC4p = f.c4p;
    cc.c4p.balanceDualPort = f.dualPortRule;
    cc.c4p.balanceSpines = f.spineRule;
    cc.c4p.dynamicLoadBalance = f.dynamicLoadBalance;
    if (f.qpsPerConnection > 0)
        cc.accl.qpsPerConnection = f.qpsPerConnection;

    cc.enableC4d = f.c4d;
    if (f.evaluatePeriod > 0)
        cc.c4d.evaluatePeriod = f.evaluatePeriod;
    if (f.hangThreshold > 0)
        cc.c4d.hangThreshold = f.hangThreshold;
    if (f.minWaitForSlow > 0)
        cc.c4d.analyzer.minWaitForSlow = f.minWaitForSlow;
    cc.steering.isolateOnSlow = f.isolateOnSlow;
    if (f.isolationDelay > 0)
        cc.steering.isolationDelay = f.isolationDelay;
    if (f.fabricCoalesceWindow > 0)
        cc.fabric.coalesceWindow = f.fabricCoalesceWindow;

    cc.seed = seed;
    return cc;
}

void
runSpecTrial(const ScenarioSpec &spec, TrialContext &ctx)
{
    const std::string invalid = validateSpec(spec);
    if (!invalid.empty())
        throw std::invalid_argument(invalid);

    // The spray policy must outlive the cluster's ACCL instance.
    accl::SprayPathPolicy spray(deriveSeed(ctx.seed, 0x5B4A45));
    // The telemetry sink must outlive the cluster (steering holds a
    // raw pointer until the cluster is torn down).
    std::unique_ptr<c4d::MetricsTelemetrySink> obsSink;
    if (ctx.meter != nullptr) {
        obsSink =
            std::make_unique<c4d::MetricsTelemetrySink>(*ctx.meter);
    }

    core::Cluster cluster(toClusterConfig(spec, ctx.seed));
    core::Cluster &cl = cluster;
    // One attach instruments the whole stack: every layer emits
    // through the Simulator's TraceScope. Nullptr recorder = no-op.
    cl.sim().setTracer(trace::TraceScope(ctx.tracer));
    // Same deal for metrics: a detached scope is a null check.
    cl.sim().setMetrics(obs::MetricsScope(ctx.meter));
    const net::Topology &topo = cl.topology();

    if (spec.features.sprayPaths)
        cl.accl().setPathPolicy(&spray);
    if (spec.features.backupNodes > 0)
        cl.provisionBackupNodes(spec.features.backupNodes);
    if (spec.features.c4d)
        cl.startRuntime();
    if (obsSink && cl.steering() != nullptr)
        cl.steering()->setTelemetrySink(obsSink.get());

    // --- jobs ---------------------------------------------------------
    struct JobProbe
    {
        train::TrainingJob *job = nullptr;
        JobId id = kInvalidId;
        int segments = 0;
        double commSeconds = 0.0;
        double totalSeconds = 0.0;
    };
    std::vector<JobProbe> jobProbes;
    jobProbes.reserve(spec.jobs.size());
    for (const JobSpec &js : spec.jobs) {
        train::JobConfig jc;
        jc.id = js.id;
        jc.name = js.name.empty() ? "job" + std::to_string(js.id)
                                  : js.name;
        jc.model = modelByName(js.model);
        if (js.microbatchCompute > 0)
            jc.model.microbatchCompute = js.microbatchCompute;
        jc.parallel = js.parallel;
        jc.microBatch = js.microBatch;
        jc.initTime = js.initTime;
        jc.dpGroupsSimulated = js.dpGroupsSimulated;
        jc.checkpointIntervalIters = js.checkpointIntervalIters;
        jc.checkpointCost = js.checkpointCost;
        if (js.hangWatchdogTimeout > 0)
            jc.hangWatchdogTimeout = js.hangWatchdogTimeout;
        jc.seed =
            deriveSeed(ctx.seed, static_cast<std::uint64_t>(js.id));

        const std::string perr = jc.parallel.validate(
            topo.gpusPerNode(), topo.numNodes());
        if (!perr.empty()) {
            throw std::invalid_argument("variant '" + spec.variant +
                                        "': " + perr);
        }

        if (!js.nodes.empty()) {
            jc.nodes = js.nodes;
        } else {
            const int needed =
                jc.parallel.worldSize() / topo.gpusPerNode();
            jc.nodes = cl.allocateNodes(needed, js.placement);
        }

        JobProbe probe;
        probe.id = js.id;
        probe.segments = core::segmentsSpanned(topo, jc.nodes);
        probe.job = &cl.addJob(jc);
        jobProbes.push_back(probe);
    }
    // Attach the comm-share accumulators after the vector is stable.
    if (spec.metrics.jobCommShare) {
        for (JobProbe &p : jobProbes) {
            JobProbe *probe = &p;
            p.job->onIteration(
                [probe](const train::IterationStats &st) {
                    probe->commSeconds += toSeconds(st.commDuration);
                    probe->totalSeconds +=
                        toSeconds(st.end - st.start);
                });
        }
    }

    // --- allreduce benchmark tasks ------------------------------------
    struct TaskProbe
    {
        std::unique_ptr<core::AllreduceTask> task;
        Summary before, after;
    };
    std::vector<TaskProbe> taskProbes;
    // Keep task telemetry ids disjoint from every training-job id.
    JobId taskIdBase = 1;
    for (const JobSpec &js : spec.jobs)
        taskIdBase = std::max(taskIdBase, js.id + 1);
    const Time splitAt = spec.metrics.splitAt;
    for (const AllreduceGroupSpec &g : spec.allreduces) {
        std::vector<std::vector<NodeId>> placements;
        switch (g.placement) {
          case AllreduceGroupSpec::Placement::CrossSegmentPairs:
            placements = core::crossSegmentPairs(topo, g.tasks);
            break;
          case AllreduceGroupSpec::Placement::SpreadAcrossSegments:
            placements.push_back(
                core::spreadAcrossSegments(topo, g.nodesPerTask));
            break;
          case AllreduceGroupSpec::Placement::Explicit:
            placements = g.explicitNodes;
            break;
        }
        for (const std::vector<NodeId> &nodes : placements) {
            core::AllreduceTaskConfig tc;
            tc.job = static_cast<JobId>(taskIdBase + taskProbes.size());
            tc.nodes = nodes;
            tc.bytes = g.bytes;
            tc.iterations = g.iterations;
            taskProbes.push_back(
                {std::make_unique<core::AllreduceTask>(cl, tc), {}, {}});
        }
    }
    if (splitAt > 0) {
        for (TaskProbe &p : taskProbes) {
            TaskProbe *probe = &p;
            Simulator *sim = &cl.sim();
            p.task->onIteration([probe, sim, splitAt](int, double bw) {
                (sim->now() < splitAt ? probe->before : probe->after)
                    .add(bw);
            });
        }
    }

    // --- fault plan ---------------------------------------------------
    for (const LinkEventSpec &le : spec.linkEvents) {
        cl.sim().scheduleAt(le.at, [&cl, le] {
            const int leaf =
                cl.topology().leafIndex(le.segment, le.plane);
            cl.fabric().setLinkUp(
                cl.topology().trunkUplink(leaf, le.spine), le.up);
            cl.fabric().setLinkUp(
                cl.topology().trunkDownlink(le.spine, leaf), le.up);
        });
    }

    // Deterministic failure injection (the campaign-forensics test
    // hook): the trial raises at a fixed simulated time, so re-running
    // the same shard under --trace reproduces the failure with every
    // event up to the abort on record.
    if (spec.abortAt > 0 &&
        (spec.abortTrial < 0 || spec.abortTrial == ctx.trial)) {
        const int trial = ctx.trial;
        const Time at = spec.abortAt;
        cl.sim().scheduleAt(at, [trial, at] {
            throw std::runtime_error(
                "injected abort (abort_at_s) at t=" +
                std::to_string(static_cast<double>(at) * 1e-9) +
                "s in trial " + std::to_string(trial));
        });
    }

    Time lastFaultAt = 0;
    std::vector<NodeId> faultVictims;
    for (const FaultSpec &fs : spec.faults) {
        lastFaultAt = std::max(lastFaultAt, fs.at);
        // Victims referencing a job placement resolve at injection time
        // (steering may have reshaped the placement by then).
        cl.sim().scheduleAt(fs.at, [&cl, &faultVictims, fs] {
            NodeId victim = fs.node;
            if (fs.job != kInvalidId) {
                train::TrainingJob *job = cl.job(fs.job);
                if (!job ||
                    static_cast<std::size_t>(fs.jobNodeIndex) >=
                        job->nodes().size()) {
                    return;
                }
                victim = job->nodes()[static_cast<std::size_t>(
                    fs.jobNodeIndex)];
            }
            faultVictims.push_back(victim);
            const int nics =
                fs.allNics ? cl.topology().config().nicsPerNode : 1;
            for (int n = 0; n < nics; ++n) {
                fault::FaultEvent ev;
                ev.type = fs.type;
                ev.node = victim;
                ev.nic = fs.allNics ? static_cast<NicId>(n) : fs.nic;
                ev.severity = fs.severity;
                cl.faults().injectNow(ev);
            }
        });
    }
    if (spec.campaign.enabled) {
        std::vector<NodeId> population;
        for (NodeId n = 0; n < topo.numNodes(); ++n)
            population.push_back(n);
        cl.faults().startCampaign(
            campaignRates(spec.campaign), population,
            topo.config().nicsPerNode, topo.gpusPerNode(),
            topo.numLeaves() * topo.numSpines(), spec.campaign.span);
    }

    // --- samplers -----------------------------------------------------
    Summary cnpSamples;
    std::unique_ptr<PeriodicTask> cnpSampler;
    if (spec.metrics.cnpSamplePeriod > 0) {
        const NicId nic = spec.metrics.cnpNic;
        c4d::TelemetrySink *cnpSink = obsSink.get();
        cnpSampler = std::make_unique<PeriodicTask>(
            cl.sim(), spec.metrics.cnpSamplePeriod,
            [&cl, &cnpSamples, nic, cnpSink] {
                double sum = 0.0;
                std::int64_t hot = 0;
                for (NodeId n = 0; n < cl.topology().numNodes(); ++n) {
                    const double kps =
                        cl.fabric().nicCnpRate(n, nic) / 1000.0;
                    if (kps > 0.0) {
                        cnpSamples.add(kps);
                        sum += kps;
                        ++hot;
                    }
                }
                const double mean =
                    hot > 0 ? sum / static_cast<double>(hot) : 0.0;
                trace::TraceScope &tr = cl.sim().tracer();
                if (tr.wants(trace::EventKind::CnpSample)) {
                    trace::Event tev;
                    tev.when = cl.sim().now();
                    tev.kind = trace::EventKind::CnpSample;
                    tev.a = hot;
                    tev.value = mean;
                    tr.record(std::move(tev));
                }
                // The same sample feeds the live metrics registry
                // through the replay telemetry seam — the spec-driven
                // sampler runs (and draws its lazy recomputes)
                // whether or not metrics are attached, so attaching
                // cannot perturb the simulation.
                if (cnpSink != nullptr) {
                    c4d::CnpRecord crec;
                    crec.when = cl.sim().now();
                    crec.hotNics = hot;
                    crec.meanKps = mean;
                    cnpSink->onCnpSample(crec);
                }
            });
        cnpSampler->start();
    }

    std::vector<Summary> uplinkBefore, uplinkAfter;
    std::unique_ptr<PeriodicTask> uplinkSampler;
    if (spec.metrics.uplinkSamplePeriod > 0) {
        const int leaf = topo.leafIndex(spec.metrics.uplinkSegment,
                                        spec.metrics.uplinkPlane);
        uplinkBefore.resize(static_cast<std::size_t>(topo.numSpines()));
        uplinkAfter.resize(static_cast<std::size_t>(topo.numSpines()));
        uplinkSampler = std::make_unique<PeriodicTask>(
            cl.sim(), spec.metrics.uplinkSamplePeriod,
            [&cl, &uplinkBefore, &uplinkAfter, leaf, splitAt] {
                for (int s = 0; s < cl.topology().numSpines(); ++s) {
                    const double gb = toGbps(cl.fabric().linkThroughput(
                        cl.topology().trunkUplink(leaf, s)));
                    auto si = static_cast<std::size_t>(s);
                    (splitAt > 0 && cl.sim().now() >= splitAt
                         ? uplinkAfter[si]
                         : uplinkBefore[si])
                        .add(gb);
                }
            });
        uplinkSampler->start();
    }

    // --- metrics pump -------------------------------------------------
    // Pulls gauge state from pure accessors only: anything that could
    // trigger a lazy fabric recompute (and so consume RNG) would make
    // a metrics-enabled run diverge from the golden one. Fabric/CNP
    // observables come from push-side instrumentation and the
    // spec-driven CNP sampler above instead.
    std::function<void()> sampleMetrics;
    std::shared_ptr<std::function<void()>> pump;
    if (ctx.meter != nullptr) {
        obs::MetricRegistry *reg = ctx.meter;
        core::Cluster *clp = &cl;
        std::vector<JobProbe> *probes = &jobProbes;
        sampleMetrics = [reg, clp, probes] {
            Simulator &sim = clp->sim();
            reg->setCounter("sim.executed",
                            static_cast<std::int64_t>(
                                sim.executedCount()));
            reg->setGauge("sim.pending",
                          static_cast<double>(sim.pendingCount()));
            reg->observe("sim.depth",
                         static_cast<double>(sim.pendingCount()));
            reg->setGauge("sim.pool_slots",
                          static_cast<double>(sim.poolSlotCount()));
            reg->setGauge("sim.near_band",
                          static_cast<double>(sim.nearBandSize()));
            reg->setGauge("sim.far_band",
                          static_cast<double>(sim.farBandSize()));
            reg->setCounter("sim.promotes",
                            static_cast<std::int64_t>(
                                sim.promoteCount()));
            reg->setCounter("fabric.flows_started",
                            static_cast<std::int64_t>(
                                clp->fabric().totalFlowsStarted()));
            reg->setCounter("fabric.flows_completed",
                            static_cast<std::int64_t>(
                                clp->fabric().totalFlowsCompleted()));
            reg->setCounter("fabric.reallocs",
                            static_cast<std::int64_t>(
                                clp->fabric().reallocationCount()));
            double sps = 0.0;
            std::int64_t iters = 0;
            for (const JobProbe &p : *probes) {
                sps += p.job->meanSamplesPerSec();
                iters += static_cast<std::int64_t>(
                    p.job->iterationsCompleted());
            }
            reg->setGauge("jobs.samples_per_sec", sps);
            reg->setCounter("jobs.iterations", iters);
            if (clp->steering() != nullptr) {
                reg->setGauge("steering.backups_available",
                              static_cast<double>(
                                  clp->steering()->backupsAvailable()));
                reg->setGauge(
                    "steering.isolated_nodes",
                    static_cast<double>(
                        clp->steering()->isolatedNodes().size()));
                reg->setCounter("steering.restarts",
                                static_cast<std::int64_t>(
                                    clp->steering()->restartsIssued()));
            }
            if (clp->c4dMaster() != nullptr) {
                reg->setCounter("c4d.events",
                                static_cast<std::int64_t>(
                                    clp->c4dMaster()->eventsEmitted()));
            }
            reg->snapshot(sim.now());
        };

        // Self-stopping pump instead of a PeriodicTask: a task that
        // always reschedules would keep a horizonless run() from ever
        // draining its queue. The pump re-arms only while other work
        // is pending, so it ticks for exactly the simulation's
        // lifetime; the post-run sample below captures the end state.
        const Duration period =
            ctx.opt.metricsPeriod > 0 ? ctx.opt.metricsPeriod
                                      : seconds(1);
        Simulator *simp = &cl.sim();
        pump = std::make_shared<std::function<void()>>();
        std::weak_ptr<std::function<void()>> weak = pump;
        auto fire = sampleMetrics;
        *pump = [simp, period, fire, weak] {
            fire();
            if (simp->pendingCount() > 0) {
                if (auto next = weak.lock())
                    simp->scheduleAfter(period,
                                        [next] { (*next)(); });
            }
        };
        simp->scheduleAfter(period, [pump] { (*pump)(); });
    }

    // --- run ----------------------------------------------------------
    for (JobProbe &p : jobProbes)
        p.job->start();
    for (TaskProbe &p : taskProbes)
        p.task->start();
    cl.run(spec.horizon > 0 ? spec.horizon : kTimeNever);
    if (cnpSampler)
        cnpSampler->stop();
    if (uplinkSampler)
        uplinkSampler->stop();
    // One final pull at end time, before any reporting below runs the
    // fabric's lazy recomputes.
    if (sampleMetrics)
        sampleMetrics();

    // --- metrics ------------------------------------------------------
    const MetricsSpec &m = spec.metrics;
    if (m.jobThroughput && !jobProbes.empty()) {
        double total = 0.0;
        for (const JobProbe &p : jobProbes) {
            const std::string prefix =
                jobProbes.size() == 1
                    ? ""
                    : "job" + std::to_string(p.id) + "_";
            const double sps = p.job->meanSamplesPerSec();
            total += sps;
            ctx.metric(prefix + "samples_per_sec", sps);
            if (m.jobCommShare) {
                ctx.metric(prefix + "comm_share",
                           p.totalSeconds > 0.0
                               ? p.commSeconds / p.totalSeconds
                               : 0.0);
            }
            if (m.jobSegments) {
                ctx.metric(prefix + "segments",
                           static_cast<double>(p.segments));
            }
        }
        if (jobProbes.size() > 1)
            ctx.metric("samples_per_sec_total", total);
    }

    if (m.taskBusBw && !taskProbes.empty()) {
        if (splitAt > 0) {
            Summary before, after;
            for (const TaskProbe &p : taskProbes) {
                before.merge(p.before);
                after.merge(p.after);
            }
            ctx.metric("busbw_before",
                       before.empty() ? 0.0 : before.mean());
            ctx.metric("busbw_after",
                       after.empty() ? 0.0 : after.mean());
            if (m.perTask && taskProbes.size() > 1) {
                for (std::size_t i = 0; i < taskProbes.size(); ++i) {
                    const Summary &a = taskProbes[i].after;
                    ctx.metric("task" + std::to_string(i + 1) +
                                   "_busbw_after",
                               a.empty() ? 0.0 : a.mean());
                }
            }
        } else {
            Summary means;
            for (const TaskProbe &p : taskProbes)
                means.add(p.task->busBwGbps().mean());
            ctx.metric("busbw_mean", means.mean());
            if (taskProbes.size() > 1) {
                ctx.metric("busbw_min", means.min());
                ctx.metric("busbw_max", means.max());
                if (m.perTask) {
                    for (std::size_t i = 0; i < taskProbes.size();
                         ++i) {
                        ctx.metric(
                            "task" + std::to_string(i + 1) + "_busbw",
                            taskProbes[i].task->busBwGbps().mean());
                    }
                }
            }
        }
    }

    if (m.cnpSamplePeriod > 0) {
        ctx.metric("cnp_mean_kps",
                   cnpSamples.empty() ? 0.0 : cnpSamples.mean());
        ctx.metric("cnp_p5_kps",
                   cnpSamples.empty() ? 0.0 : cnpSamples.percentile(5));
        ctx.metric("cnp_p95_kps", cnpSamples.empty()
                                      ? 0.0
                                      : cnpSamples.percentile(95));
    }

    if (m.uplinkSamplePeriod > 0) {
        std::vector<bool> failed(
            static_cast<std::size_t>(topo.numSpines()), false);
        for (const LinkEventSpec &le : spec.linkEvents) {
            if (!le.up && le.segment == m.uplinkSegment &&
                le.plane == m.uplinkPlane &&
                le.spine < topo.numSpines()) {
                failed[static_cast<std::size_t>(le.spine)] = true;
            }
        }
        Summary surviving;
        for (int s = 0; s < topo.numSpines(); ++s) {
            auto si = static_cast<std::size_t>(s);
            ctx.metric("uplink" + std::to_string(s) + "_before_gbps",
                       uplinkBefore[si].empty()
                           ? 0.0
                           : uplinkBefore[si].mean());
            const double after =
                uplinkAfter[si].empty() ? 0.0 : uplinkAfter[si].mean();
            ctx.metric("uplink" + std::to_string(s) + "_after_gbps",
                       after);
            if (!failed[si])
                surviving.add(after);
        }
        ctx.metric("uplink_surviving_cv", surviving.cv());
    }

    if (m.detection) {
        double detected = 0.0, localized = 0.0, latency = 0.0;
        for (const c4d::C4dEvent &ev :
             cl.c4dMaster()->eventLog()) {
            if (ev.when < lastFaultAt || ev.kind != m.detectionKind)
                continue;
            detected = 1.0;
            latency = toSeconds(ev.when - lastFaultAt);
            for (NodeId n : ev.suspectNodes) {
                for (NodeId v : faultVictims) {
                    if (n == v)
                        localized = 1.0;
                }
            }
            break;
        }
        ctx.metric("detected", detected);
        ctx.metric("localized", localized);
        ctx.metric("detect_latency_s", latency);
    }

    if (m.steeringCounters) {
        ctx.metric("restarts",
                   cl.steering() ? static_cast<double>(
                                       cl.steering()->restartsIssued())
                                 : 0.0);
        ctx.metric("isolated_nodes",
                   cl.steering()
                       ? static_cast<double>(
                             cl.steering()->isolatedNodes().size())
                       : 0.0);
        ctx.metric("c4d_events",
                   cl.c4dMaster()
                       ? static_cast<double>(
                             cl.c4dMaster()->eventsEmitted())
                       : 0.0);
        double iters = 0.0;
        for (const JobProbe &p : jobProbes)
            iters += static_cast<double>(p.job->iterationsCompleted());
        ctx.metric("iterations", iters);
    }
}

} // namespace c4::scenario
