/**
 * @file
 * Declarative scenario specification.
 *
 * A ScenarioSpec composes, as plain data, what the paper-figure benches
 * used to hard-code: topology and oversubscription, the job mix and its
 * placement, allreduce benchmark tasks, a fault / link-event schedule,
 * the C4P/C4D feature knobs, and which metrics to collect. The spec
 * interpreter (workload.h) turns one spec + one seed into a metric set;
 * scenarios that need machinery the interpreter does not model (e.g.
 * the Monte-Carlo downtime table) install a `custom` executor instead
 * and still ride the same registry / runner / sink pipeline.
 */

#ifndef C4_SCENARIO_SPEC_H
#define C4_SCENARIO_SPEC_H

#include <functional>
#include <string>
#include <vector>

#include "c4d/master.h"
#include "common/types.h"
#include "core/placement.h"
#include "fault/fault_types.h"
#include "net/topology.h"
#include "scenario/options.h"
#include "train/parallel.h"

namespace c4::scenario {

/** Which cluster wiring to instantiate. */
struct TopologySpec
{
    enum class Kind {
        Testbed, ///< the paper's 16-node controlled testbed
        Pod,     ///< production-style pod (numNodes required)
    };

    Kind kind = Kind::Testbed;
    int numNodes = 0; ///< Pod only
    double oversubscription = 1.0;

    /** Overrides; 0 keeps the topology default. */
    int nodesPerSegment = 0;
    Bandwidth nvlinkBusBandwidth = 0;
};

/** C4P / C4D deployment knobs. */
struct FeatureSpec
{
    bool c4p = false;
    bool dualPortRule = true;
    bool spineRule = true;
    bool dynamicLoadBalance = false;

    /** Use the packet-spraying path policy instead of ECMP/C4P. */
    bool sprayPaths = false;

    /** ACCL QPs per connection; 0 keeps the default. */
    int qpsPerConnection = 0;

    bool c4d = false;
    Duration evaluatePeriod = 0;  ///< 0 keeps the default
    Duration hangThreshold = 0;   ///< 0 keeps the default
    Duration minWaitForSlow = 0;  ///< analyzer knob; 0 keeps default
    bool isolateOnSlow = true;
    Duration isolationDelay = 0;  ///< 0 keeps the default
    int backupNodes = 0;          ///< warm spares for steering

    /**
     * Fabric re-allocation coalesce window for link events
     * (FabricConfig::coalesceWindow): during a fault storm, link
     * up/down and capacity-scale events within the window fold into a
     * single incremental recompute. 0 keeps the default (immediate).
     */
    Duration fabricCoalesceWindow = 0;
};

/** One training job of the workload. */
struct JobSpec
{
    JobId id = 1;
    std::string name;          ///< defaults to "job<id>"
    std::string model = "llama7b"; ///< gpt22b|gpt175b|llama7b|llama13b
    Duration microbatchCompute = 0; ///< override; 0 = model default
    train::ParallelismSpec parallel;
    int microBatch = 1;
    Duration initTime = seconds(1);
    int dpGroupsSimulated = 2;
    int checkpointIntervalIters = 0;
    Duration checkpointCost = seconds(30);
    Duration hangWatchdogTimeout = 0; ///< 0 keeps the default

    /** Explicit placement, or empty to allocate under `placement`. */
    std::vector<NodeId> nodes;
    core::PlacementStrategy placement = core::PlacementStrategy::Packed;
};

/** A group of nccl-test-style repeated-allreduce benchmark tasks. */
struct AllreduceGroupSpec
{
    /** How task node sets are derived. */
    enum class Placement {
        CrossSegmentPairs,    ///< Fig. 10 style: one pair per task
        SpreadAcrossSegments, ///< one task over nodes spread round-robin
        Explicit,             ///< explicitNodes, one entry per task
    };

    int tasks = 1;
    Placement placement = Placement::CrossSegmentPairs;
    int nodesPerTask = 2; ///< SpreadAcrossSegments only
    std::vector<std::vector<NodeId>> explicitNodes;
    Bytes bytes = mib(256);
    int iterations = 25;
};

/** Fail (or restore) one leaf<->spine trunk, both directions. */
struct LinkEventSpec
{
    Time at = 0;
    int segment = 0;
    net::Plane plane = net::Plane::Left;
    int spine = 0;
    bool up = false;
};

/** One scheduled fault injection. */
struct FaultSpec
{
    Time at = 0;
    fault::FaultType type = fault::FaultType::SlowNode;

    /**
     * Victim selection: when job != kInvalidId the victim is that job's
     * placement entry [jobNodeIndex], resolved at injection time (the
     * steering service may have reshaped the placement by then);
     * otherwise `node` is used as-is.
     */
    JobId job = kInvalidId;
    int jobNodeIndex = 0;
    NodeId node = kInvalidId;

    /** NIC-scoped faults: one event per NIC when allNics is set. */
    bool allNics = false;
    NicId nic = 0;

    double severity = 1.0;
};

/** A Poisson fault campaign over the cluster's node population. */
struct CampaignSpec
{
    enum class Rates { June2023, December2023 };

    bool enabled = false;
    Rates rates = Rates::June2023;
    double scale = 1.0; ///< rate multiplier (compressed campaigns)
    Duration span = 0;
};

/** Which measurements the interpreter collects. */
struct MetricsSpec
{
    /** Allreduce tasks: per-task busbw + mean/min/max aggregate. */
    bool taskBusBw = true;
    bool perTask = true;

    /** Split busbw / uplink samples into before/after this time
     * (0 disables the split) — the Fig. 12/13 failure experiments. */
    Time splitAt = 0;

    /** Jobs: samples/s, communication share, segments spanned. */
    bool jobThroughput = true;
    bool jobCommShare = false;
    bool jobSegments = false;

    /** Steering / C4D counters (restarts, isolations, events). */
    bool steeringCounters = false;

    /** Sample NIC CNP rates each period (0 disables); Fig. 11. */
    Duration cnpSamplePeriod = 0;
    NicId cnpNic = 7;

    /** Sample one leaf's trunk-uplink throughput (0 disables); Fig. 13. */
    Duration uplinkSamplePeriod = 0;
    int uplinkSegment = 0;
    net::Plane uplinkPlane = net::Plane::Left;

    /** Scan the C4D event log for a detection of the injected fault. */
    bool detection = false;
    c4d::C4dEventKind detectionKind = c4d::C4dEventKind::CommSlow;
};

/**
 * One declaratively-described simulated run (a scenario variant).
 * Executed by runSpecTrial() unless `custom` is installed.
 */
struct ScenarioSpec
{
    std::string variant = "default"; ///< row label in tables/CSV

    TopologySpec topology;
    FeatureSpec features;

    std::vector<JobSpec> jobs;
    std::vector<AllreduceGroupSpec> allreduces;

    std::vector<LinkEventSpec> linkEvents;
    std::vector<FaultSpec> faults;
    CampaignSpec campaign;

    MetricsSpec metrics;

    /** Simulated horizon; 0 = run until the event queue drains
     * (allreduce-only workloads). Required when jobs are present. */
    Duration horizon = 0;

    /**
     * Deterministic failure injection: raise an error at this
     * simulated time (0 disables). Because per-trial seeds depend only
     * on (base seed, absolute trial index), a shard that fails here
     * fails identically when re-run — which is what lets the campaign
     * executor cut a forensics bundle by re-running the shard under
     * `--trace`. Every event up to the abort is recorded.
     */
    Duration abortAt = 0;

    /** Restrict abortAt to one absolute trial index (-1 = every
     * trial), so one shard of a sweep fails while its siblings
     * complete. */
    int abortTrial = -1;

    /**
     * Escape hatch: scenarios whose machinery the interpreter does not
     * model (Monte-Carlo downtime, raw fault campaigns, kernel
     * microbenchmarks) execute through this instead. Must be callable
     * concurrently from multiple trial workers.
     */
    std::function<void(TrialContext &)> custom;
};

/**
 * Validate a declarative spec. Returns an empty string when the spec is
 * runnable, otherwise a human-readable description of the first error.
 * Specs with a `custom` executor skip workload validation.
 */
std::string validateSpec(const ScenarioSpec &spec);

/** True if `model` names a known model preset. */
bool knownModel(const std::string &model);

/**
 * Validate a shard trial range against a sweep of @p totalTrials
 * trials. @p count 0 means "through the last trial". Returns an empty
 * string when the range is runnable, otherwise the error: a negative
 * bound, a begin at or past the sweep end, or a range overflowing it.
 * Shared by the runner (against the resolved trial count) and the
 * spec-file binder (against the counts stored in the file).
 */
std::string validateTrialRange(int begin, int count, int totalTrials);

} // namespace c4::scenario

#endif // C4_SCENARIO_SPEC_H
