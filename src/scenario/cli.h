/**
 * @file
 * The unified scenario CLI. Every registered scenario is runnable via
 *
 *   c4bench <scenario...> [--smoke] [--trials N] [--threads N]
 *           [--seed S] [--csv FILE] [--json FILE]
 *   c4bench --list              # enumerate registered scenarios
 *   c4bench --all [...]        # run everything
 *
 * scenarioMain() is the whole bench binary's main(); examples may call
 * it too to expose a scoped scenario set.
 */

#ifndef C4_SCENARIO_CLI_H
#define C4_SCENARIO_CLI_H

namespace c4::scenario {

/**
 * Parse argv, resolve scenarios against the registry, and run them.
 * @return process exit code (0 ok, 1 run failure, 2 usage error).
 */
int scenarioMain(int argc, char **argv);

} // namespace c4::scenario

#endif // C4_SCENARIO_CLI_H
