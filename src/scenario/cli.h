/**
 * @file
 * The unified scenario CLI. Every registered scenario is runnable via
 *
 *   c4bench <scenario...> [--smoke] [--trials N] [--threads N]
 *           [--seed S] [--csv FILE] [--json FILE]
 *   c4bench --list              # enumerate registered scenarios
 *   c4bench --all [...]        # run everything
 *   c4bench --spec file.json   # register + run a spec file from disk
 *   c4bench --dump-spec NAME   # export a scenario as a spec file
 *
 * scenarioMain() is the whole bench binary's main(); examples may call
 * it too to expose a scoped scenario set.
 *
 * Spec-file support is provided by the specio module, one layer above
 * this one, through SpecCliHooks — a binary that wants --spec /
 * --dump-spec calls specio::installSpecCliHooks() before
 * scenarioMain(); one that does not simply rejects the flags.
 */

#ifndef C4_SCENARIO_CLI_H
#define C4_SCENARIO_CLI_H

#include <functional>
#include <string>
#include <vector>

#include "scenario/options.h"

namespace c4::scenario {

struct Scenario;

/** Spec-file handlers installed by a higher layer (specio). */
struct SpecCliHooks
{
    /**
     * Load @p path, register its scenario (replacing a same-named
     * registration), and return the scenario name.
     * @throws std::exception on parse/validation failure.
     */
    std::function<std::string(const std::string &path)>
        loadAndRegister;

    /** Serialize @p scenario with its variants evaluated under
     * @p opt. */
    std::function<std::string(const Scenario &scenario,
                              const RunOptions &opt)>
        dump;
};

/** Install the --spec / --dump-spec handlers (see SpecCliHooks). */
void setSpecCliHooks(SpecCliHooks hooks);

/** @name Shared CLI value grammar
 * One definition for every binary that takes scenario options
 * (c4bench, c4sweep), so a value copied between their command lines
 * means the same run.
 * @{ */

/** Strict positive integer in [1, 1'000'000]. */
bool parseCliInt(const char *s, int &out);

/** Seed: decimal, or hex with an explicit 0x prefix — never octal,
 * matching spec-file "seed" strings. */
bool parseCliSeed(const char *s, std::uint64_t &out);

/** True when @p arg names a spec file (ends in ".json"). */
bool looksLikeSpecPath(const char *arg);

/** Append the non-empty comma-separated items of @p list to @p out
 * (the `--spec a,b` / `--only id1,id2` value grammar). */
void splitCommaList(const std::string &list,
                    std::vector<std::string> &out);

/** @} */

/**
 * Parse argv, resolve scenarios against the registry, and run them.
 * @return process exit code (0 ok, 1 run failure, 2 usage error).
 */
int scenarioMain(int argc, char **argv);

} // namespace c4::scenario

#endif // C4_SCENARIO_CLI_H
