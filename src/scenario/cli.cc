#include "scenario/cli.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "scenario/registry.h"
#include "scenario/runner.h"
#include "scenario/sink.h"

namespace c4::scenario {

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <scenario...> [options]\n"
        "       %s --list | --all [options]\n"
        "\n"
        "options:\n"
        "  --smoke        seconds-scale pass; numbers are NOT "
        "paper-comparable\n"
        "  --trials N     trials per variant (default: per scenario)\n"
        "  --threads N    parallel trial workers (default: hardware)\n"
        "  --seed S       base seed (decimal or 0x hex)\n"
        "  --csv FILE     write per-trial rows as CSV (one file can\n"
        "                 hold all scenarios of one invocation)\n"
        "  --json FILE    write results as JSON\n"
        "  --list         list registered scenarios and exit\n"
        "  --all          run every registered scenario\n",
        argv0, argv0);
}

bool
parseInt(const char *s, int &out)
{
    char *end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || v <= 0 || v > 1'000'000)
        return false;
    out = static_cast<int>(v);
    return true;
}

bool
parseSeed(const char *s, std::uint64_t &out)
{
    char *end = nullptr;
    out = std::strtoull(s, &end, 0);
    return end != s && *end == '\0';
}

} // namespace

int
scenarioMain(int argc, char **argv)
{
    RunOptions opt;
    std::vector<std::string> names;
    std::string csvPath, jsonPath;
    bool list = false;
    bool all = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                return nullptr;
            }
            return argv[++i];
        };
        if (std::strcmp(arg, "--smoke") == 0) {
            opt.smoke = true;
        } else if (std::strcmp(arg, "--list") == 0) {
            list = true;
        } else if (std::strcmp(arg, "--all") == 0) {
            all = true;
        } else if (std::strcmp(arg, "--trials") == 0) {
            const char *v = value("--trials");
            if (!v || !parseInt(v, opt.trials)) {
                usage(argv[0]);
                return 2;
            }
        } else if (std::strcmp(arg, "--threads") == 0) {
            const char *v = value("--threads");
            if (!v || !parseInt(v, opt.threads)) {
                usage(argv[0]);
                return 2;
            }
        } else if (std::strcmp(arg, "--seed") == 0) {
            const char *v = value("--seed");
            if (!v || !parseSeed(v, opt.seed)) {
                usage(argv[0]);
                return 2;
            }
            opt.seedSet = true;
        } else if (std::strcmp(arg, "--csv") == 0) {
            const char *v = value("--csv");
            if (!v) {
                usage(argv[0]);
                return 2;
            }
            csvPath = v;
        } else if (std::strcmp(arg, "--json") == 0) {
            const char *v = value("--json");
            if (!v) {
                usage(argv[0]);
                return 2;
            }
            jsonPath = v;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usage(argv[0]);
            return 0;
        } else if (arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", arg);
            usage(argv[0]);
            return 2;
        } else {
            names.emplace_back(arg);
        }
    }

    Registry &registry = Registry::instance();
    if (list) {
        for (const Scenario *s : registry.all())
            std::printf("%-24s %s\n", s->name.c_str(),
                        s->title.c_str());
        return 0;
    }

    std::vector<const Scenario *> targets;
    if (all) {
        targets = registry.all();
    } else {
        for (const std::string &name : names) {
            const Scenario *s = registry.find(name);
            if (!s) {
                std::fprintf(stderr,
                             "unknown scenario '%s' (try --list)\n",
                             name.c_str());
                return 2;
            }
            targets.push_back(s);
        }
    }
    if (targets.empty()) {
        usage(argv[0]);
        return 2;
    }

    if (opt.smoke) {
        std::printf("[smoke] reduced trials/iterations/horizons; "
                    "numbers are not paper-comparable\n");
    }

    std::ofstream csvFile, jsonFile;
    std::vector<std::unique_ptr<ResultSink>> sinks;
    sinks.push_back(std::make_unique<TableSink>(std::cout));
    if (!csvPath.empty()) {
        csvFile.open(csvPath);
        if (!csvFile) {
            std::fprintf(stderr, "cannot open '%s'\n",
                         csvPath.c_str());
            return 2;
        }
        sinks.push_back(std::make_unique<CsvSink>(csvFile));
    }
    if (!jsonPath.empty()) {
        jsonFile.open(jsonPath);
        if (!jsonFile) {
            std::fprintf(stderr, "cannot open '%s'\n",
                         jsonPath.c_str());
            return 2;
        }
        sinks.push_back(std::make_unique<JsonSink>(jsonFile));
    }

    ScenarioRunner runner(opt);
    for (auto &sink : sinks)
        runner.addSink(*sink);

    int rc = 0;
    for (const Scenario *s : targets)
        rc = runner.run(*s) != 0 ? 1 : rc;
    return rc;
}

} // namespace c4::scenario
