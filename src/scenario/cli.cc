#include "scenario/cli.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "scenario/registry.h"
#include "scenario/runner.h"
#include "scenario/sink.h"

namespace c4::scenario {

namespace {

SpecCliHooks &
specHooks()
{
    static SpecCliHooks hooks;
    return hooks;
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <scenario...> [options]\n"
        "       %s --list | --all [options]\n"
        "       %s --spec FILE[,FILE...] [options]\n"
        "       %s --dump-spec NAME [options]\n"
        "\n"
        "options:\n"
        "  --smoke        seconds-scale pass; numbers are NOT "
        "paper-comparable\n"
        "  --trials N     trials per variant (default: per scenario)\n"
        "  --threads N    parallel trial workers (default: hardware)\n"
        "  --seed S       base seed (decimal or 0x hex)\n"
        "  --csv FILE     write per-trial rows as CSV (one file can\n"
        "                 hold all scenarios of one invocation);\n"
        "                 FILE '-' streams CSV to stdout for piping\n"
        "                 and suppresses the table\n"
        "  --json FILE    write results as JSON\n"
        "  --trace DIR    write per-trial event traces (JSONL) and a\n"
        "                 per-scenario Chrome trace under DIR; inspect\n"
        "                 with c4trace summary|timeline|diff\n"
        "  --trace-filter KINDS\n"
        "                 record only these comma-separated event\n"
        "                 kinds (e.g. fault_injected,recompute_end)\n"
        "  --metrics DIR  write per-trial metric snapshots (c4metrics\n"
        "                 JSONL) under DIR; inspect with c4stat\n"
        "                 summary|tail|diff\n"
        "  --metrics-period S\n"
        "                 sampling cadence in simulated seconds\n"
        "                 (default 1.0; needs --metrics)\n"
        "  --list         list registered scenarios and exit\n"
        "  --all          run every registered scenario\n"
        "  --spec FILES   load scenarios from spec files and run them\n"
        "                 (a positional argument ending in .json is\n"
        "                 treated as a spec file too); a file naming\n"
        "                 a registered scenario replaces it\n"
        "  --dump-spec NAME\n"
        "                 write NAME as a spec file to stdout and\n"
        "                 exit; variants are frozen under the other\n"
        "                 flags (--smoke, --trials, --seed)\n",
        argv0, argv0, argv0, argv0);
}

} // namespace

void
splitCommaList(const std::string &list, std::vector<std::string> &out)
{
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? list.size() : comma;
        if (end > start)
            out.push_back(list.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
}

bool
parseCliInt(const char *s, int &out)
{
    char *end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || v <= 0 || v > 1'000'000)
        return false;
    out = static_cast<int>(v);
    return true;
}

bool
parseCliSeed(const char *s, std::uint64_t &out)
{
    // Hex with an explicit 0x prefix, otherwise decimal — never
    // octal, matching spec-file "seed" strings, so a seed copied
    // between the command line and a spec file means the same run.
    const bool hex = s[0] == '0' && (s[1] == 'x' || s[1] == 'X');
    const char *digits = hex ? s + 2 : s;
    if (*digits == '\0')
        return false;
    for (const char *p = digits; *p; ++p) {
        const auto c = static_cast<unsigned char>(*p);
        if (!(hex ? std::isxdigit(c) : std::isdigit(c)))
            return false;
    }
    errno = 0;
    out = std::strtoull(s, nullptr, hex ? 16 : 10);
    return errno == 0;
}

bool
looksLikeSpecPath(const char *arg)
{
    const std::size_t n = std::strlen(arg);
    return n > 5 && std::strcmp(arg + n - 5, ".json") == 0;
}

void
setSpecCliHooks(SpecCliHooks hooks)
{
    specHooks() = std::move(hooks);
}

int
scenarioMain(int argc, char **argv)
{
    RunOptions opt;
    std::vector<std::string> names;
    std::vector<std::string> specPaths;
    std::string dumpName;
    std::string csvPath, jsonPath;
    bool list = false;
    bool all = false;
    bool traceFilterSet = false;
    bool metricsPeriodSet = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                return nullptr;
            }
            return argv[++i];
        };
        if (std::strcmp(arg, "--smoke") == 0) {
            opt.smoke = true;
        } else if (std::strcmp(arg, "--list") == 0) {
            list = true;
        } else if (std::strcmp(arg, "--all") == 0) {
            all = true;
        } else if (std::strcmp(arg, "--trials") == 0) {
            const char *v = value("--trials");
            if (!v || !parseCliInt(v, opt.trials)) {
                usage(argv[0]);
                return 2;
            }
        } else if (std::strcmp(arg, "--threads") == 0) {
            const char *v = value("--threads");
            if (!v || !parseCliInt(v, opt.threads)) {
                usage(argv[0]);
                return 2;
            }
        } else if (std::strcmp(arg, "--seed") == 0) {
            const char *v = value("--seed");
            if (!v || !parseCliSeed(v, opt.seed)) {
                usage(argv[0]);
                return 2;
            }
            opt.seedSet = true;
        } else if (std::strcmp(arg, "--csv") == 0) {
            const char *v = value("--csv");
            if (!v) {
                usage(argv[0]);
                return 2;
            }
            csvPath = v;
        } else if (std::strcmp(arg, "--json") == 0) {
            const char *v = value("--json");
            if (!v) {
                usage(argv[0]);
                return 2;
            }
            jsonPath = v;
        } else if (std::strcmp(arg, "--trace") == 0) {
            const char *v = value("--trace");
            if (!v || *v == '\0') {
                usage(argv[0]);
                return 2;
            }
            opt.traceDir = v;
        } else if (std::strcmp(arg, "--trace-filter") == 0) {
            const char *v = value("--trace-filter");
            if (!v) {
                usage(argv[0]);
                return 2;
            }
            const std::string err =
                trace::parseKindFilter(v, opt.traceFilter);
            if (!err.empty()) {
                std::fprintf(stderr, "%s\n", err.c_str());
                return 2;
            }
            traceFilterSet = true;
        } else if (std::strcmp(arg, "--metrics") == 0) {
            const char *v = value("--metrics");
            if (!v || *v == '\0') {
                usage(argv[0]);
                return 2;
            }
            opt.metricsDir = v;
        } else if (std::strcmp(arg, "--metrics-period") == 0) {
            const char *v = value("--metrics-period");
            char *end = nullptr;
            const double sec = v ? std::strtod(v, &end) : 0.0;
            if (!v || end == v || *end != '\0' || !(sec > 0.0) ||
                sec > 86400.0) {
                std::fprintf(stderr, "--metrics-period needs a "
                                     "positive number of seconds\n");
                return 2;
            }
            opt.metricsPeriod = seconds(sec);
            metricsPeriodSet = true;
        } else if (std::strcmp(arg, "--spec") == 0) {
            const char *v = value("--spec");
            if (!v) {
                usage(argv[0]);
                return 2;
            }
            splitCommaList(v, specPaths);
        } else if (std::strcmp(arg, "--dump-spec") == 0) {
            const char *v = value("--dump-spec");
            if (!v) {
                usage(argv[0]);
                return 2;
            }
            if (!dumpName.empty()) {
                // Concatenated documents would not reload; one
                // scenario per dump.
                std::fprintf(stderr,
                             "--dump-spec may be given only once\n");
                return 2;
            }
            dumpName = v;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usage(argv[0]);
            return 0;
        } else if (arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", arg);
            usage(argv[0]);
            return 2;
        } else if (looksLikeSpecPath(arg)) {
            // `c4bench --spec specs/*.json` shell-expands into
            // positional paths after the first; treat them all as
            // spec files.
            specPaths.emplace_back(arg);
        } else {
            names.emplace_back(arg);
        }
    }

    Registry &registry = Registry::instance();

    if (traceFilterSet && opt.traceDir.empty()) {
        std::fprintf(stderr, "--trace-filter needs --trace DIR\n");
        return 2;
    }
    if (metricsPeriodSet && opt.metricsDir.empty()) {
        std::fprintf(stderr,
                     "--metrics-period needs --metrics DIR\n");
        return 2;
    }
    if ((!specPaths.empty() && !specHooks().loadAndRegister) ||
        (!dumpName.empty() && !specHooks().dump)) {
        std::fprintf(stderr, "this binary was built without "
                             "spec-file support\n");
        return 2;
    }
    for (const std::string &path : specPaths) {
        try {
            std::string loaded = specHooks().loadAndRegister(path);
            if (std::find(names.begin(), names.end(), loaded) ==
                names.end()) {
                names.push_back(std::move(loaded));
            }
        } catch (const std::exception &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 2;
        }
    }

    if (!dumpName.empty()) {
        const Scenario *s = registry.find(dumpName);
        if (!s) {
            std::fprintf(stderr,
                         "unknown scenario '%s' (try --list)\n",
                         dumpName.c_str());
            return 2;
        }
        const ScenarioRunner runner(opt);
        const std::string text =
            specHooks().dump(*s, runner.resolved(*s));
        std::fwrite(text.data(), 1, text.size(), stdout);
        return 0;
    }
    if (list) {
        for (const Scenario *s : registry.all())
            std::printf("%-24s %s\n", s->name.c_str(),
                        s->title.c_str());
        return 0;
    }

    std::vector<const Scenario *> targets;
    if (all) {
        targets = registry.all();
    } else {
        for (const std::string &name : names) {
            const Scenario *s = registry.find(name);
            if (!s) {
                std::fprintf(stderr,
                             "unknown scenario '%s' (try --list)\n",
                             name.c_str());
                return 2;
            }
            targets.push_back(s);
        }
    }
    if (targets.empty()) {
        usage(argv[0]);
        return 2;
    }

    // `--csv -` hands stdout to the CSV stream (shard workers pipe
    // results to their parent), so everything else that normally goes
    // to stdout — the banner and the table — must move or go away.
    const bool csvToStdout = csvPath == "-";
    if (opt.smoke) {
        std::fprintf(csvToStdout ? stderr : stdout,
                     "[smoke] reduced trials/iterations/horizons; "
                     "numbers are not paper-comparable\n");
    }

    std::ofstream csvFile, jsonFile;
    std::vector<std::unique_ptr<ResultSink>> sinks;
    if (!csvToStdout)
        sinks.push_back(std::make_unique<TableSink>(std::cout));
    if (csvToStdout) {
        sinks.push_back(std::make_unique<CsvSink>(std::cout));
    } else if (!csvPath.empty()) {
        csvFile.open(csvPath);
        if (!csvFile) {
            std::fprintf(stderr, "cannot open '%s'\n",
                         csvPath.c_str());
            return 2;
        }
        sinks.push_back(std::make_unique<CsvSink>(csvFile));
    }
    if (!jsonPath.empty()) {
        jsonFile.open(jsonPath);
        if (!jsonFile) {
            std::fprintf(stderr, "cannot open '%s'\n",
                         jsonPath.c_str());
            return 2;
        }
        sinks.push_back(std::make_unique<JsonSink>(jsonFile));
    }

    ScenarioRunner runner(opt);
    for (auto &sink : sinks)
        runner.addSink(*sink);

    int rc = 0;
    for (const Scenario *s : targets)
        rc = runner.run(*s) != 0 ? 1 : rc;
    return rc;
}

} // namespace c4::scenario
