/**
 * @file
 * Structured result emission. The runner feeds every sink the same
 * ordered trial stream (sorted by variant, then trial — independent of
 * worker-thread scheduling), so CSV/JSON output is byte-identical for
 * any --threads value.
 */

#ifndef C4_SCENARIO_SINK_H
#define C4_SCENARIO_SINK_H

#include <ostream>
#include <string>
#include <vector>

#include "scenario/options.h"

namespace c4::scenario {

struct Scenario;

/** Receives one scenario run's results. */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;

    virtual void begin(const Scenario &scenario, const RunOptions &opt)
    {
        (void)scenario;
        (void)opt;
    }

    /** Called once per (variant, trial), in deterministic order. */
    virtual void trial(const TrialResult &result) { (void)result; }

    virtual void end(const Scenario &scenario) { (void)scenario; }
};

/**
 * Human-readable aggregate table: one column per variant, one row per
 * metric, cells are means over trials. Prints the scenario notes and
 * summarize() output underneath.
 */
class TableSink : public ResultSink
{
  public:
    explicit TableSink(std::ostream &out);

    void begin(const Scenario &scenario, const RunOptions &opt) override;
    void trial(const TrialResult &result) override;
    void end(const Scenario &scenario) override;

    /** Format a metric value with magnitude-aware precision. */
    static std::string formatValue(double v);

  private:
    std::ostream &out_;
    int trials_ = 1;
    std::vector<TrialResult> results_;
};

/**
 * Long-format CSV: scenario,variant,trial,seed,metric,value. One file
 * can hold several scenario runs; the header is written once.
 */
class CsvSink : public ResultSink
{
  public:
    explicit CsvSink(std::ostream &out);

    void begin(const Scenario &scenario, const RunOptions &opt) override;
    void trial(const TrialResult &result) override;

  private:
    std::ostream &out_;
    bool headerWritten_ = false;
};

/** JSON array of scenario objects, each with its per-trial metrics. */
class JsonSink : public ResultSink
{
  public:
    explicit JsonSink(std::ostream &out);
    ~JsonSink() override;

    void begin(const Scenario &scenario, const RunOptions &opt) override;
    void trial(const TrialResult &result) override;
    void end(const Scenario &scenario) override;

  private:
    std::ostream &out_;
    bool anyScenario_ = false;
    bool anyTrial_ = false;
};

} // namespace c4::scenario

#endif // C4_SCENARIO_SINK_H
