#include "scenario/runner.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>

#include "common/random.h"
#include "obs/snapshot.h"
#include "scenario/workload.h"
#include "trace/export.h"

namespace c4::scenario {

namespace {

/**
 * Write the per-trial JSONL traces plus one combined Chrome trace for
 * the scenario. File naming is index-prefixed (`v<K>_<label>.t<N>`)
 * so sanitized variant labels cannot collide. Recorder slot order is
 * the runner's work-item order (variant-major, then trial) — the same
 * deterministic order the sinks see.
 * @return "" on success, else an error message.
 */
std::string
writeTraces(const RunOptions &opt, const Scenario &scenario,
            const std::vector<ScenarioSpec> &variants, int trialBegin,
            int trialCount,
            const std::vector<std::unique_ptr<trace::TraceRecorder>>
                &recorders)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::path(opt.traceDir) / trace::sanitizeFileComponent(
                                     scenario.name);
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        return "cannot create trace directory '" + dir.string() +
               "': " + ec.message();
    }

    std::vector<trace::ChromeTrack> tracks;
    tracks.reserve(recorders.size());
    for (std::size_t v = 0; v < variants.size(); ++v) {
        const std::string stem =
            "v" + std::to_string(v) + "_" +
            trace::sanitizeFileComponent(variants[v].variant);
        for (int t = 0; t < trialCount; ++t) {
            const int trial = trialBegin + t;
            const std::size_t i =
                v * static_cast<std::size_t>(trialCount) +
                static_cast<std::size_t>(t);
            const fs::path path =
                dir / (stem + ".t" + std::to_string(trial) +
                       ".jsonl");
            std::ofstream out(path, std::ios::binary);
            if (!out)
                return "cannot write '" + path.string() + "'";
            const std::string text =
                trace::writeJsonl(recorders[i]->events());
            out.write(text.data(),
                      static_cast<std::streamsize>(text.size()));
            if (!out)
                return "cannot write '" + path.string() + "'";

            trace::ChromeTrack track;
            track.processName = variants[v].variant;
            track.threadName = "trial " + std::to_string(trial);
            track.pid = static_cast<int>(v);
            track.tid = trial;
            track.events = &recorders[i]->events();
            tracks.push_back(std::move(track));
        }
    }

    const fs::path chrome =
        fs::path(opt.traceDir) /
        (trace::sanitizeFileComponent(scenario.name) + ".trace.json");
    std::ofstream out(chrome, std::ios::binary);
    if (!out)
        return "cannot write '" + chrome.string() + "'";
    const std::string text = trace::writeChromeTrace(tracks);
    out.write(text.data(),
              static_cast<std::streamsize>(text.size()));
    if (!out)
        return "cannot write '" + chrome.string() + "'";
    return "";
}

/**
 * Write the per-trial c4metrics/1 snapshots. File naming mirrors
 * writeTraces (`v<K>_<label>.t<N>.jsonl` under a sanitized scenario
 * directory) and registry slot order is the same variant-major work-
 * item order, so snapshot bytes are independent of the thread
 * schedule.
 * @return "" on success, else an error message.
 */
std::string
writeMetricSnapshots(
    const RunOptions &opt, const Scenario &scenario,
    const std::vector<ScenarioSpec> &variants, int trialBegin,
    int trialCount,
    const std::vector<std::unique_ptr<obs::MetricRegistry>>
        &registries)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::path(opt.metricsDir) /
        obs::sanitizeFileComponent(scenario.name);
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        return "cannot create metrics directory '" + dir.string() +
               "': " + ec.message();
    }

    for (std::size_t v = 0; v < variants.size(); ++v) {
        const std::string stem =
            "v" + std::to_string(v) + "_" +
            obs::sanitizeFileComponent(variants[v].variant);
        for (int t = 0; t < trialCount; ++t) {
            const int trial = trialBegin + t;
            const std::size_t i =
                v * static_cast<std::size_t>(trialCount) +
                static_cast<std::size_t>(t);
            const fs::path path =
                dir / (stem + ".t" + std::to_string(trial) +
                       ".jsonl");
            obs::SnapshotMeta meta;
            meta.scenario = scenario.name;
            meta.variant = variants[v].variant;
            meta.trial = trial;
            meta.periodNs = opt.metricsPeriod;
            std::ofstream out(path, std::ios::binary);
            if (!out)
                return "cannot write '" + path.string() + "'";
            const std::string text =
                obs::writeSnapshot(meta, registries[i]->samples());
            out.write(text.data(),
                      static_cast<std::streamsize>(text.size()));
            if (!out)
                return "cannot write '" + path.string() + "'";
        }
    }
    return "";
}

} // namespace

std::uint64_t
trialSeed(std::uint64_t base, int trial)
{
    // Mixed per-trial streams, independent of execution order.
    return deriveSeed(base, static_cast<std::uint64_t>(trial));
}

ScenarioRunner::ScenarioRunner(RunOptions opt) : opt_(opt) {}

void
ScenarioRunner::addSink(ResultSink &sink)
{
    sinks_.push_back(&sink);
}

RunOptions
ScenarioRunner::resolved(const Scenario &scenario) const
{
    RunOptions opt = opt_;
    if (opt.trials <= 0) {
        opt.trials =
            opt.smoke ? scenario.smokeTrials : scenario.fullTrials;
    }
    if (!opt.seedSet) {
        opt.seed = scenario.seed;
        opt.seedSet = true;
    }
    if (opt.threads <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        opt.threads = hw > 0 ? static_cast<int>(hw) : 1;
    }
    return opt;
}

int
ScenarioRunner::run(const Scenario &scenario)
{
    const RunOptions opt = resolved(scenario);
    const std::vector<ScenarioSpec> variants = scenario.variants(opt);
    if (variants.empty()) {
        std::fprintf(stderr, "scenario '%s' produced no variants\n",
                     scenario.name.c_str());
        return 1;
    }
    for (const ScenarioSpec &spec : variants) {
        const std::string invalid = validateSpec(spec);
        if (!invalid.empty()) {
            std::fprintf(stderr, "scenario '%s': invalid spec: %s\n",
                         scenario.name.c_str(), invalid.c_str());
            return 1;
        }
    }

    // Shard support: only trials [trialBegin, trialBegin + count) of
    // the resolved sweep execute, but the trial indices handed to
    // trialSeed() (and reported in results) stay absolute, so shard
    // output is byte-identical to the same rows of the full run.
    const std::string badRange = validateTrialRange(
        scenario.trialBegin, scenario.trialCount, opt.trials);
    if (!badRange.empty()) {
        std::fprintf(stderr, "scenario '%s': %s\n",
                     scenario.name.c_str(), badRange.c_str());
        return 1;
    }
    const int trialCount = scenario.trialCount > 0
                               ? scenario.trialCount
                               : opt.trials - scenario.trialBegin;

    const std::size_t items = variants.size() *
                              static_cast<std::size_t>(trialCount);
    std::vector<TrialResult> results(items);
    std::vector<std::exception_ptr> errors(items);
    // One recorder per work item when tracing: each trial records
    // into its own slot, so workers stay synchronization-free and the
    // output order is independent of the thread schedule.
    const bool tracing = !opt.traceDir.empty();
    std::vector<std::unique_ptr<trace::TraceRecorder>> recorders(
        tracing ? items : 0);
    // Same slot-per-item scheme for metric registries.
    const bool metricsOn = !opt.metricsDir.empty();
    std::vector<std::unique_ptr<obs::MetricRegistry>> registries(
        metricsOn ? items : 0);
    std::atomic<std::size_t> next{0};

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= items)
                return;
            const std::size_t v =
                i / static_cast<std::size_t>(trialCount);
            const int trial =
                scenario.trialBegin +
                static_cast<int>(
                    i % static_cast<std::size_t>(trialCount));
            const ScenarioSpec &spec = variants[v];
            TrialContext ctx(opt, trialSeed(opt.seed, trial), trial);
            if (tracing) {
                recorders[i] = std::make_unique<trace::TraceRecorder>(
                    opt.traceFilter);
                ctx.tracer = recorders[i].get();
            }
            if (metricsOn) {
                registries[i] = std::make_unique<obs::MetricRegistry>();
                ctx.meter = registries[i].get();
            }
            try {
                if (spec.custom)
                    spec.custom(ctx);
                else
                    runSpecTrial(spec, ctx);
            } catch (...) {
                errors[i] = std::current_exception();
                continue;
            }
            TrialResult &r = results[i];
            r.scenario = scenario.name;
            r.variant = spec.variant;
            r.variantIndex = static_cast<int>(v);
            r.trial = trial;
            r.seed = ctx.seed;
            r.metrics = ctx.metrics();
        }
    };

    const std::size_t workers =
        scenario.serialTrials
            ? 1
            : std::min<std::size_t>(
                  static_cast<std::size_t>(opt.threads), items);
    if (workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    // Traces and metric snapshots are written BEFORE failed trials are
    // reported: a failed trial's recorder holds every event up to the
    // exception, and shipping that partial trace with the failure is
    // the whole point of the sweep executor's forensics bundles.
    if (tracing) {
        const std::string traceError =
            writeTraces(opt, scenario, variants, scenario.trialBegin,
                        trialCount, recorders);
        if (!traceError.empty()) {
            std::fprintf(stderr, "scenario '%s': %s\n",
                         scenario.name.c_str(), traceError.c_str());
            return 1;
        }
    }

    if (metricsOn) {
        const std::string metricsError = writeMetricSnapshots(
            opt, scenario, variants, scenario.trialBegin, trialCount,
            registries);
        if (!metricsError.empty()) {
            std::fprintf(stderr, "scenario '%s': %s\n",
                         scenario.name.c_str(), metricsError.c_str());
            return 1;
        }
    }

    for (std::size_t i = 0; i < items; ++i) {
        if (!errors[i])
            continue;
        std::string what = "unknown exception";
        try {
            std::rethrow_exception(errors[i]);
        } catch (const std::exception &e) {
            what = e.what();
        } catch (...) {
        }
        std::fprintf(
            stderr,
            "scenario '%s' variant '%s' trial %d failed: %s\n",
            scenario.name.c_str(),
            variants[i / static_cast<std::size_t>(trialCount)]
                .variant.c_str(),
            scenario.trialBegin +
                static_cast<int>(
                    i % static_cast<std::size_t>(trialCount)),
            what.c_str());
        return 1;
    }

    // Deterministic emission order: variant-major, then trial.
    for (ResultSink *sink : sinks_)
        sink->begin(scenario, opt);
    for (const TrialResult &r : results) {
        for (ResultSink *sink : sinks_)
            sink->trial(r);
    }
    for (ResultSink *sink : sinks_)
        sink->end(scenario);
    return 0;
}

} // namespace c4::scenario
