#include "scenario/runner.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <thread>

#include "common/random.h"
#include "scenario/workload.h"

namespace c4::scenario {

std::uint64_t
trialSeed(std::uint64_t base, int trial)
{
    // Mixed per-trial streams, independent of execution order.
    return deriveSeed(base, static_cast<std::uint64_t>(trial));
}

ScenarioRunner::ScenarioRunner(RunOptions opt) : opt_(opt) {}

void
ScenarioRunner::addSink(ResultSink &sink)
{
    sinks_.push_back(&sink);
}

RunOptions
ScenarioRunner::resolved(const Scenario &scenario) const
{
    RunOptions opt = opt_;
    if (opt.trials <= 0) {
        opt.trials =
            opt.smoke ? scenario.smokeTrials : scenario.fullTrials;
    }
    if (!opt.seedSet) {
        opt.seed = scenario.seed;
        opt.seedSet = true;
    }
    if (opt.threads <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        opt.threads = hw > 0 ? static_cast<int>(hw) : 1;
    }
    return opt;
}

int
ScenarioRunner::run(const Scenario &scenario)
{
    const RunOptions opt = resolved(scenario);
    const std::vector<ScenarioSpec> variants = scenario.variants(opt);
    if (variants.empty()) {
        std::fprintf(stderr, "scenario '%s' produced no variants\n",
                     scenario.name.c_str());
        return 1;
    }
    for (const ScenarioSpec &spec : variants) {
        const std::string invalid = validateSpec(spec);
        if (!invalid.empty()) {
            std::fprintf(stderr, "scenario '%s': invalid spec: %s\n",
                         scenario.name.c_str(), invalid.c_str());
            return 1;
        }
    }

    // Shard support: only trials [trialBegin, trialBegin + count) of
    // the resolved sweep execute, but the trial indices handed to
    // trialSeed() (and reported in results) stay absolute, so shard
    // output is byte-identical to the same rows of the full run.
    const std::string badRange = validateTrialRange(
        scenario.trialBegin, scenario.trialCount, opt.trials);
    if (!badRange.empty()) {
        std::fprintf(stderr, "scenario '%s': %s\n",
                     scenario.name.c_str(), badRange.c_str());
        return 1;
    }
    const int trialCount = scenario.trialCount > 0
                               ? scenario.trialCount
                               : opt.trials - scenario.trialBegin;

    const std::size_t items = variants.size() *
                              static_cast<std::size_t>(trialCount);
    std::vector<TrialResult> results(items);
    std::vector<std::exception_ptr> errors(items);
    std::atomic<std::size_t> next{0};

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= items)
                return;
            const std::size_t v =
                i / static_cast<std::size_t>(trialCount);
            const int trial =
                scenario.trialBegin +
                static_cast<int>(
                    i % static_cast<std::size_t>(trialCount));
            const ScenarioSpec &spec = variants[v];
            TrialContext ctx(opt, trialSeed(opt.seed, trial), trial);
            try {
                if (spec.custom)
                    spec.custom(ctx);
                else
                    runSpecTrial(spec, ctx);
            } catch (...) {
                errors[i] = std::current_exception();
                continue;
            }
            TrialResult &r = results[i];
            r.scenario = scenario.name;
            r.variant = spec.variant;
            r.variantIndex = static_cast<int>(v);
            r.trial = trial;
            r.seed = ctx.seed;
            r.metrics = ctx.metrics();
        }
    };

    const std::size_t workers =
        scenario.serialTrials
            ? 1
            : std::min<std::size_t>(
                  static_cast<std::size_t>(opt.threads), items);
    if (workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    for (std::size_t i = 0; i < items; ++i) {
        if (!errors[i])
            continue;
        std::string what = "unknown exception";
        try {
            std::rethrow_exception(errors[i]);
        } catch (const std::exception &e) {
            what = e.what();
        } catch (...) {
        }
        std::fprintf(
            stderr,
            "scenario '%s' variant '%s' trial %d failed: %s\n",
            scenario.name.c_str(),
            variants[i / static_cast<std::size_t>(trialCount)]
                .variant.c_str(),
            scenario.trialBegin +
                static_cast<int>(
                    i % static_cast<std::size_t>(trialCount)),
            what.c_str());
        return 1;
    }

    // Deterministic emission order: variant-major, then trial.
    for (ResultSink *sink : sinks_)
        sink->begin(scenario, opt);
    for (const TrialResult &r : results) {
        for (ResultSink *sink : sinks_)
            sink->trial(r);
    }
    for (ResultSink *sink : sinks_)
        sink->end(scenario);
    return 0;
}

} // namespace c4::scenario
