/**
 * @file
 * The declarative-spec interpreter: turns one ScenarioSpec + one seed
 * into a metric set by instantiating a Cluster, materializing the job /
 * allreduce workload, scheduling the fault plan, sampling the requested
 * telemetry, and running the simulation to the horizon.
 */

#ifndef C4_SCENARIO_WORKLOAD_H
#define C4_SCENARIO_WORKLOAD_H

#include "core/cluster.h"
#include "scenario/options.h"
#include "scenario/spec.h"

namespace c4::scenario {

/**
 * Execute one declarative trial.
 * @throws std::invalid_argument when validateSpec rejects the spec.
 */
void runSpecTrial(const ScenarioSpec &spec, TrialContext &ctx);

/** Build the ClusterConfig a spec describes (exposed for tests). */
core::ClusterConfig toClusterConfig(const ScenarioSpec &spec,
                                    std::uint64_t seed);

/** Look up a model preset by registry name (validated names only). */
train::ModelConfig modelByName(const std::string &name);

} // namespace c4::scenario

#endif // C4_SCENARIO_WORKLOAD_H
