#include "scenario/registry.h"

#include <algorithm>
#include <stdexcept>

namespace c4::scenario {

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

void
Registry::add(Scenario scenario)
{
    if (scenario.name.empty())
        throw std::invalid_argument("scenario name must not be empty");
    if (!scenario.variants)
        throw std::invalid_argument("scenario '" + scenario.name +
                                    "' has no variants factory");
    if (find(scenario.name)) {
        throw std::invalid_argument("duplicate scenario name '" +
                                    scenario.name + "'");
    }
    scenarios_.push_back(std::move(scenario));
}

bool
Registry::addOrReplace(Scenario scenario)
{
    if (scenario.name.empty())
        throw std::invalid_argument("scenario name must not be empty");
    if (!scenario.variants)
        throw std::invalid_argument("scenario '" + scenario.name +
                                    "' has no variants factory");
    for (Scenario &existing : scenarios_) {
        if (existing.name == scenario.name) {
            existing = std::move(scenario);
            return true;
        }
    }
    scenarios_.push_back(std::move(scenario));
    return false;
}

const Scenario *
Registry::find(const std::string &name) const
{
    for (const Scenario &s : scenarios_) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

std::vector<const Scenario *>
Registry::all() const
{
    std::vector<const Scenario *> out;
    out.reserve(scenarios_.size());
    for (const Scenario &s : scenarios_)
        out.push_back(&s);
    std::sort(out.begin(), out.end(),
              [](const Scenario *a, const Scenario *b) {
                  return a->name < b->name;
              });
    return out;
}

Register::Register(Scenario scenario)
{
    Registry::instance().add(std::move(scenario));
}

} // namespace c4::scenario
