/**
 * @file
 * The scenario runner: expands a scenario into (variant, trial) work
 * items, executes them across std::thread workers — each trial owns an
 * independent Simulator, so trials are embarrassingly parallel — and
 * streams the results through the attached sinks in a deterministic
 * order. Per-trial seeds derive from (base seed, trial index) only, so
 * results are byte-identical for any thread count and variants of the
 * same trial index stay seed-paired (baseline vs C4P comparisons).
 */

#ifndef C4_SCENARIO_RUNNER_H
#define C4_SCENARIO_RUNNER_H

#include <vector>

#include "scenario/options.h"
#include "scenario/registry.h"
#include "scenario/sink.h"

namespace c4::scenario {

class ScenarioRunner
{
  public:
    explicit ScenarioRunner(RunOptions opt = {});

    /** Attach a sink; must outlive the runner's run() calls. */
    void addSink(ResultSink &sink);

    /**
     * Run every variant x trial of @p scenario.
     * @return 0 on success, 1 when a spec failed validation or a trial
     *         threw (the error is reported to stderr).
     */
    int run(const Scenario &scenario);

    /** Options with trials/seed/threads resolved for @p scenario. */
    RunOptions resolved(const Scenario &scenario) const;

  private:
    RunOptions opt_;
    std::vector<ResultSink *> sinks_;
};

} // namespace c4::scenario

#endif // C4_SCENARIO_RUNNER_H
