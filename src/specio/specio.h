/**
 * @file
 * Spec files: the on-disk, declarative form of a scenario.
 *
 * A spec file is a JSON-subset document holding everything a Scenario
 * registration holds except code — name, presentation strings, trial
 * counts, seed, and the full variant list as ScenarioSpec data. Loading
 * one registers a scenario at runtime (`c4bench --spec file.json`), so
 * authoring a new workload is editing a text file, not recompiling;
 * dumping one (`c4bench --dump-spec NAME`) turns any built-in scenario
 * into a copy-editable starting point.
 *
 * The mapping is byte-stable: writeSpecFile(parseSpecFile(text)) ==
 * text for any text writeSpecFile produced. The binder reports unknown
 * keys with line/column and a nearest-known-key suggestion ("unknown
 * key \"oversubscripton\" ... did you mean \"oversubscription\"?").
 *
 * Durations are written in seconds with exact decimal text derived
 * from the integer nanosecond value, and parsed back with integer
 * arithmetic, so no float round-trip can perturb a schedule.
 *
 * Variants whose built-in registration installs a `custom` executor
 * (code, not data) dump as `"custom": true`; such a variant re-loads
 * into a stub that fails with a clear message if actually run.
 */

#ifndef C4_SPECIO_SPECIO_H
#define C4_SPECIO_SPECIO_H

#include <string>
#include <vector>

#include "scenario/registry.h"
#include "specio/json.h"

namespace c4::specio {

/** A Scenario as pure data: what a spec file stores. */
struct SpecFile
{
    std::string name;
    std::string title;
    std::string description;
    std::string notes;
    int fullTrials = 1;
    int smokeTrials = 1;
    bool serialTrials = false;

    /** Shard trial range (`trial_begin` / `trial_count` keys); the
     * default covers the whole sweep. See Scenario::trialBegin. */
    int trialBegin = 0;
    int trialCount = 0;

    std::uint64_t seed = 0xC4C10C4Dull;
    std::vector<scenario::ScenarioSpec> variants;
};

/**
 * Capture a registered scenario as data. The variant factory is
 * evaluated under @p opt, so the dump freezes whatever --smoke /
 * --trials / --seed shape was in effect (dump with and without --smoke
 * to capture both shapes).
 */
SpecFile specFromScenario(const scenario::Scenario &scenario,
                          const scenario::RunOptions &opt);

/**
 * Turn loaded spec data back into a runnable Scenario whose variant
 * factory returns the stored specs regardless of options.
 */
scenario::Scenario scenarioFromSpec(const SpecFile &file);

/** Serialize canonically (byte-stable under parse + re-write). */
std::string writeSpecFile(const SpecFile &file);

/**
 * Parse and bind a spec document; every variant is validated with
 * validateSpec.
 * @throws SpecError with line/column on malformed or mistyped input.
 */
SpecFile parseSpecFile(const std::string &text);

/**
 * Read @p path and parse it.
 * @throws SpecError, with the path prefixed to the message.
 */
SpecFile loadSpecFile(const std::string &path);

/**
 * Install the --spec / --dump-spec handlers into the scenario CLI
 * (scenario::setSpecCliHooks). Call once from a bench main() before
 * scenarioMain(); binaries that skip this simply reject the flags.
 */
void installSpecCliHooks();

} // namespace c4::specio

#endif // C4_SPECIO_SPECIO_H
