/**
 * @file
 * Compatibility shim: the JSON-subset reader/writer moved to
 * common/json.h (namespace c4) so layers below scenario — the sweep
 * manifest and the event-trace exporters — can link it without
 * reaching up into specio. Existing specio users keep their include
 * path and the c4::specio spellings via these aliases.
 */

#ifndef C4_SPECIO_JSON_H
#define C4_SPECIO_JSON_H

#include "common/json.h"

namespace c4::specio {

using c4::Json;
using c4::SpecError;
using c4::formatJsonDouble;
using c4::parseJson;
using c4::writeJson;
using c4::writeJsonCompact;

} // namespace c4::specio

#endif // C4_SPECIO_JSON_H
