#include "specio/specio.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "scenario/cli.h"
#include "scenario/runner.h"

namespace c4::specio {

using scenario::AllreduceGroupSpec;
using scenario::CampaignSpec;
using scenario::FaultSpec;
using scenario::FeatureSpec;
using scenario::JobSpec;
using scenario::LinkEventSpec;
using scenario::MetricsSpec;
using scenario::RunOptions;
using scenario::Scenario;
using scenario::ScenarioSpec;
using scenario::TopologySpec;

namespace {

// --- enum name tables -------------------------------------------------

template <typename E>
struct EnumName
{
    E value;
    const char *name;
};

constexpr EnumName<TopologySpec::Kind> kTopologyKinds[] = {
    {TopologySpec::Kind::Testbed, "testbed"},
    {TopologySpec::Kind::Pod, "pod"},
};

constexpr EnumName<core::PlacementStrategy> kPlacements[] = {
    {core::PlacementStrategy::Packed, "packed"},
    {core::PlacementStrategy::Scattered, "scattered"},
};

constexpr EnumName<AllreduceGroupSpec::Placement> kTaskPlacements[] = {
    {AllreduceGroupSpec::Placement::CrossSegmentPairs,
     "cross_segment_pairs"},
    {AllreduceGroupSpec::Placement::SpreadAcrossSegments,
     "spread_across_segments"},
    {AllreduceGroupSpec::Placement::Explicit, "explicit"},
};

constexpr EnumName<net::Plane> kPlanes[] = {
    {net::Plane::Left, "left"},
    {net::Plane::Right, "right"},
};

constexpr EnumName<fault::FaultType> kFaultTypes[] = {
    {fault::FaultType::CudaError, "cuda_error"},
    {fault::FaultType::EccError, "ecc_error"},
    {fault::FaultType::NvlinkError, "nvlink_error"},
    {fault::FaultType::NcclTimeout, "nccl_timeout"},
    {fault::FaultType::AckTimeout, "ack_timeout"},
    {fault::FaultType::NetworkOther, "network_other"},
    {fault::FaultType::SlowNode, "slow_node"},
    {fault::FaultType::SlowNicTx, "slow_nic_tx"},
    {fault::FaultType::SlowNicRx, "slow_nic_rx"},
    {fault::FaultType::LinkDown, "link_down"},
};

constexpr EnumName<CampaignSpec::Rates> kCampaignRates[] = {
    {CampaignSpec::Rates::June2023, "june2023"},
    {CampaignSpec::Rates::December2023, "december2023"},
};

constexpr EnumName<c4d::C4dEventKind> kEventKinds[] = {
    {c4d::C4dEventKind::CommHang, "comm_hang"},
    {c4d::C4dEventKind::NonCommHang, "non_comm_hang"},
    {c4d::C4dEventKind::CommSlow, "comm_slow"},
    {c4d::C4dEventKind::NonCommSlow, "non_comm_slow"},
};

template <typename E, std::size_t N>
const char *
enumToName(const EnumName<E> (&table)[N], E value)
{
    for (const EnumName<E> &e : table) {
        if (e.value == value)
            return e.name;
    }
    return "?";
}

// --- duration <-> decimal-seconds text --------------------------------

/** Exact decimal seconds for an integer-nanosecond duration. */
std::string
secondsText(Duration ns)
{
    const bool negative = ns < 0;
    // Two's-complement negate in unsigned space: INT64_MIN-safe.
    const std::uint64_t abs =
        negative ? 0 - static_cast<std::uint64_t>(ns)
                 : static_cast<std::uint64_t>(ns);
    std::string out = negative ? "-" : "";
    out += std::to_string(abs / 1000000000ull);
    const std::uint64_t frac = abs % 1000000000ull;
    if (frac != 0) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%09llu",
                      static_cast<unsigned long long>(frac));
        std::string digits = buf;
        while (digits.back() == '0')
            digits.pop_back();
        out += "." + digits;
    }
    return out;
}

/**
 * Parse a JSON number token as seconds into exact nanoseconds using
 * integer arithmetic (sub-nanosecond digits round half away from
 * zero). Returns false when the magnitude overflows.
 */
bool
secondsTokenToNanos(const std::string &token, Duration &out)
{
    std::size_t i = 0;
    bool negative = false;
    if (i < token.size() && token[i] == '-') {
        negative = true;
        ++i;
    }
    std::string digits;
    int pointExponent = 0; // decimal exponent of the digit string
    bool seenPoint = false;
    for (; i < token.size(); ++i) {
        const char c = token[i];
        if (c >= '0' && c <= '9') {
            // Leading zeros carry no value; keeping them out makes
            // the digit-count overflow check meaningful.
            if (!(digits.empty() && c == '0'))
                digits.push_back(c);
            if (seenPoint)
                --pointExponent;
        } else if (c == '.') {
            seenPoint = true;
        } else if (c == 'e' || c == 'E') {
            break;
        } else {
            return false;
        }
    }
    int exponent = 0;
    if (i < token.size()) { // at 'e' / 'E'
        exponent = std::atoi(token.c_str() + i + 1);
        if (exponent > 40 || exponent < -40)
            return false;
    }
    exponent += pointExponent + 9; // seconds -> nanoseconds

    // Strip trailing zeros into the exponent to minimize magnitude.
    while (!digits.empty() && digits.back() == '0') {
        digits.pop_back();
        ++exponent;
    }
    if (digits.empty()) {
        out = 0;
        return true;
    }
    if (digits.size() > 19)
        return false; // more precision than an int64 can hold
    if (exponent < -19) {
        out = 0; // below half a nanosecond; rounds to zero
        return true;
    }

    std::int64_t value = 0;
    for (char c : digits) {
        if (value >
            (std::numeric_limits<std::int64_t>::max() - 9) / 10) {
            return false;
        }
        value = value * 10 + (c - '0');
    }
    for (; exponent > 0; --exponent) {
        if (value > std::numeric_limits<std::int64_t>::max() / 10)
            return false;
        value *= 10;
    }
    std::int64_t rounder = 1;
    for (; exponent < -1; ++exponent)
        rounder *= 10;
    if (rounder > 1 || exponent == -1) {
        // One divide-by-10 left after bulk division: round half away
        // from zero on the final digit.
        value /= rounder;
        value = (value + 5) / 10;
    }
    out = negative ? -value : value;
    return true;
}

// --- binder -----------------------------------------------------------

int
editDistance(const std::string &a, const std::string &b)
{
    std::vector<int> prev(b.size() + 1), cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = static_cast<int>(j);
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = static_cast<int>(i);
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const int sub =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

/**
 * Typed, typo-detecting access to one JSON object. Every get() marks
 * its key as known; finish() rejects whatever keys remain, suggesting
 * the nearest known key.
 */
class Binder
{
  public:
    Binder(const Json &obj, std::string context)
        : obj_(obj), context_(std::move(context))
    {
        if (obj_.kind != Json::Kind::Object) {
            throw SpecError(context_ + " must be an object, not " +
                                Json::kindName(obj_.kind),
                            obj_.line, obj_.column);
        }
    }

    ~Binder() = default;
    Binder(const Binder &) = delete;
    Binder &operator=(const Binder &) = delete;

    /** Raw member access (arrays / nested objects); marks key known. */
    const Json *
    member(const char *key)
    {
        known_.push_back(key);
        const Json::Member *m = obj_.find(key);
        return m ? &m->value : nullptr;
    }

    void
    get(const char *key, bool &out)
    {
        if (const Json *v = member(key)) {
            require(*v, Json::Kind::Bool, key);
            out = v->boolean;
        }
    }

    void
    get(const char *key, int &out)
    {
        if (const Json *v = member(key)) {
            require(*v, Json::Kind::Int, key);
            if (v->integer < std::numeric_limits<int>::min() ||
                v->integer > std::numeric_limits<int>::max()) {
                fail(*v, std::string("\"") + key +
                             "\" is out of integer range");
            }
            out = static_cast<int>(v->integer);
        }
    }

    void
    get(const char *key, std::int64_t &out)
    {
        if (const Json *v = member(key)) {
            require(*v, Json::Kind::Int, key);
            out = v->integer;
        }
    }

    void
    get(const char *key, double &out)
    {
        if (const Json *v = member(key)) {
            if (v->kind == Json::Kind::Int)
                out = static_cast<double>(v->integer);
            else if (v->kind == Json::Kind::Double)
                out = v->number;
            else
                fail(*v, std::string("\"") + key +
                             "\" must be a number, not " +
                             Json::kindName(v->kind));
        }
    }

    void
    get(const char *key, std::string &out)
    {
        if (const Json *v = member(key)) {
            require(*v, Json::Kind::String, key);
            out = v->string;
        }
    }

    /** Duration/Time key, expressed in seconds in the document. */
    void
    getSeconds(const char *key, std::int64_t &out)
    {
        if (const Json *v = member(key)) {
            if (v->kind != Json::Kind::Int &&
                v->kind != Json::Kind::Double) {
                fail(*v, std::string("\"") + key +
                             "\" must be a number of seconds, not " +
                             Json::kindName(v->kind));
            }
            const std::string &token =
                v->raw.empty() ? std::to_string(v->integer) : v->raw;
            Duration ns = 0;
            if (!secondsTokenToNanos(token, ns)) {
                fail(*v, std::string("\"") + key + "\" value '" +
                             token +
                             "' does not fit an integer-nanosecond "
                             "duration");
            }
            out = ns;
        }
    }

    void
    getSeed(const char *key, std::uint64_t &out)
    {
        const Json *v = member(key);
        if (!v)
            return;
        if (v->kind == Json::Kind::Int && v->integer >= 0) {
            out = static_cast<std::uint64_t>(v->integer);
            return;
        }
        if (v->kind == Json::Kind::String) {
            // Strict shape check first: strtoull alone would skip
            // whitespace, wrap negatives, and read "077" as octal.
            const std::string &s = v->string;
            int base = 10;
            std::size_t digits = 0;
            if (s.size() > 2 && s[0] == '0' &&
                (s[1] == 'x' || s[1] == 'X')) {
                base = 16;
                digits = 2;
            }
            bool wellFormed = s.size() > digits;
            for (std::size_t i = digits; i < s.size(); ++i) {
                const auto c = static_cast<unsigned char>(s[i]);
                if (!(base == 16 ? std::isxdigit(c)
                                 : std::isdigit(c))) {
                    wellFormed = false;
                    break;
                }
            }
            if (wellFormed) {
                errno = 0;
                out = std::strtoull(s.c_str(), nullptr, base);
                if (errno == 0)
                    return;
            }
        }
        fail(*v, std::string("\"") + key +
                     "\" must be a non-negative integer or a "
                     "\"0x...\" string");
    }

    template <typename E, std::size_t N>
    void
    getEnum(const char *key, E &out, const EnumName<E> (&table)[N])
    {
        const Json *v = member(key);
        if (!v)
            return;
        require(*v, Json::Kind::String, key);
        for (const EnumName<E> &e : table) {
            if (v->string == e.name) {
                out = e.value;
                return;
            }
        }
        std::string allowed;
        for (const EnumName<E> &e : table) {
            if (!allowed.empty())
                allowed += ", ";
            allowed += std::string("\"") + e.name + "\"";
        }
        fail(*v, std::string("\"") + key + "\" value \"" + v->string +
                     "\" is not one of " + allowed);
    }

    /** Array of integers (node lists). */
    void
    getIntArray(const char *key, std::vector<NodeId> &out)
    {
        const Json *v = member(key);
        if (!v)
            return;
        require(*v, Json::Kind::Array, key);
        out = intArray(*v, key);
    }

    std::vector<NodeId>
    intArray(const Json &v, const char *key) const
    {
        std::vector<NodeId> out;
        out.reserve(v.array.size());
        for (const Json &e : v.array) {
            if (e.kind != Json::Kind::Int) {
                fail(e, std::string("\"") + key +
                            "\" entries must be integers, not " +
                            Json::kindName(e.kind));
            }
            out.push_back(static_cast<NodeId>(e.integer));
        }
        return out;
    }

    /** Reject leftover keys, suggesting the nearest known one. */
    void
    finish()
    {
        for (const Json::Member &m : obj_.object) {
            if (std::find(known_.begin(), known_.end(), m.key) !=
                known_.end()) {
                continue;
            }
            std::string message = "unknown key \"" + m.key + "\" in " +
                                  context_;
            int best = 3; // suggest only within edit distance 2
            const char *suggestion = nullptr;
            for (const char *k : known_) {
                const int d = editDistance(m.key, k);
                if (d < best) {
                    best = d;
                    suggestion = k;
                }
            }
            if (suggestion) {
                message += std::string(", did you mean \"") +
                           suggestion + "\"?";
            }
            throw SpecError(message, m.keyLine, m.keyColumn);
        }
    }

    [[noreturn]] void
    fail(const Json &at, const std::string &message) const
    {
        throw SpecError(message + " in " + context_, at.line,
                        at.column);
    }

  private:
    void
    require(const Json &v, Json::Kind kind, const char *key) const
    {
        if (v.kind != kind) {
            fail(v, std::string("\"") + key + "\" must be a " +
                        Json::kindName(kind) + ", not " +
                        Json::kindName(v.kind));
        }
    }

    const Json &obj_;
    std::string context_;
    std::vector<const char *> known_;
};

// --- struct binders ---------------------------------------------------

void
bindTopology(const Json &doc, TopologySpec &out,
             const std::string &context)
{
    Binder b(doc, context);
    b.getEnum("kind", out.kind, kTopologyKinds);
    b.get("num_nodes", out.numNodes);
    b.get("oversubscription", out.oversubscription);
    b.get("nodes_per_segment", out.nodesPerSegment);
    b.get("nvlink_bus_bw_bps", out.nvlinkBusBandwidth);
    b.finish();
}

void
bindFeatures(const Json &doc, FeatureSpec &out,
             const std::string &context)
{
    Binder b(doc, context);
    b.get("c4p", out.c4p);
    b.get("dual_port_rule", out.dualPortRule);
    b.get("spine_rule", out.spineRule);
    b.get("dynamic_load_balance", out.dynamicLoadBalance);
    b.get("spray_paths", out.sprayPaths);
    b.get("qps_per_connection", out.qpsPerConnection);
    b.get("c4d", out.c4d);
    b.getSeconds("evaluate_period_s", out.evaluatePeriod);
    b.getSeconds("hang_threshold_s", out.hangThreshold);
    b.getSeconds("min_wait_for_slow_s", out.minWaitForSlow);
    b.get("isolate_on_slow", out.isolateOnSlow);
    b.getSeconds("isolation_delay_s", out.isolationDelay);
    b.get("backup_nodes", out.backupNodes);
    b.getSeconds("fabric_coalesce_window_s", out.fabricCoalesceWindow);
    b.finish();
}

void
bindParallel(const Json &doc, train::ParallelismSpec &out,
             const std::string &context)
{
    Binder b(doc, context);
    b.get("tp", out.tp);
    b.get("pp", out.pp);
    b.get("dp", out.dp);
    b.get("ep", out.ep);
    b.get("gradient_accumulation", out.gradientAccumulation);
    b.get("zero_stage", out.zeroStage);
    b.finish();
}

void
bindJob(const Json &doc, JobSpec &out, const std::string &context)
{
    Binder b(doc, context);
    int id = out.id;
    b.get("id", id);
    out.id = static_cast<JobId>(id);
    b.get("name", out.name);
    b.get("model", out.model);
    b.getSeconds("microbatch_compute_s", out.microbatchCompute);
    if (const Json *v = b.member("parallel"))
        bindParallel(*v, out.parallel, context + ".parallel");
    b.get("micro_batch", out.microBatch);
    b.getSeconds("init_time_s", out.initTime);
    b.get("dp_groups_simulated", out.dpGroupsSimulated);
    b.get("checkpoint_interval_iters", out.checkpointIntervalIters);
    b.getSeconds("checkpoint_cost_s", out.checkpointCost);
    b.getSeconds("hang_watchdog_timeout_s", out.hangWatchdogTimeout);
    b.getIntArray("nodes", out.nodes);
    b.getEnum("placement", out.placement, kPlacements);
    b.finish();
}

void
bindAllreduce(const Json &doc, AllreduceGroupSpec &out,
              const std::string &context)
{
    Binder b(doc, context);
    b.get("tasks", out.tasks);
    b.getEnum("placement", out.placement, kTaskPlacements);
    b.get("nodes_per_task", out.nodesPerTask);
    if (const Json *v = b.member("explicit_nodes")) {
        if (v->kind != Json::Kind::Array) {
            b.fail(*v, "\"explicit_nodes\" must be an array of node "
                       "lists");
        }
        for (const Json &e : v->array) {
            if (e.kind != Json::Kind::Array) {
                b.fail(e, "\"explicit_nodes\" entries must be arrays "
                          "of node ids");
            }
            out.explicitNodes.push_back(
                b.intArray(e, "explicit_nodes"));
        }
    }
    b.get("bytes", out.bytes);
    b.get("iterations", out.iterations);
    b.finish();
}

void
bindLinkEvent(const Json &doc, LinkEventSpec &out,
              const std::string &context)
{
    Binder b(doc, context);
    b.getSeconds("at_s", out.at);
    b.get("segment", out.segment);
    b.getEnum("plane", out.plane, kPlanes);
    b.get("spine", out.spine);
    b.get("up", out.up);
    b.finish();
}

void
bindFault(const Json &doc, FaultSpec &out, const std::string &context)
{
    Binder b(doc, context);
    b.getSeconds("at_s", out.at);
    b.getEnum("type", out.type, kFaultTypes);
    int job = out.job;
    b.get("job", job);
    out.job = static_cast<JobId>(job);
    b.get("job_node_index", out.jobNodeIndex);
    int node = out.node;
    b.get("node", node);
    out.node = static_cast<NodeId>(node);
    b.get("all_nics", out.allNics);
    int nic = out.nic;
    b.get("nic", nic);
    out.nic = static_cast<NicId>(nic);
    b.get("severity", out.severity);
    b.finish();
}

void
bindCampaign(const Json &doc, CampaignSpec &out,
             const std::string &context)
{
    Binder b(doc, context);
    b.get("enabled", out.enabled);
    b.getEnum("rates", out.rates, kCampaignRates);
    b.get("scale", out.scale);
    b.getSeconds("span_s", out.span);
    b.finish();
}

void
bindMetrics(const Json &doc, MetricsSpec &out,
            const std::string &context)
{
    Binder b(doc, context);
    b.get("task_busbw", out.taskBusBw);
    b.get("per_task", out.perTask);
    b.getSeconds("split_at_s", out.splitAt);
    b.get("job_throughput", out.jobThroughput);
    b.get("job_comm_share", out.jobCommShare);
    b.get("job_segments", out.jobSegments);
    b.get("steering_counters", out.steeringCounters);
    b.getSeconds("cnp_sample_period_s", out.cnpSamplePeriod);
    int cnpNic = out.cnpNic;
    b.get("cnp_nic", cnpNic);
    out.cnpNic = static_cast<NicId>(cnpNic);
    b.getSeconds("uplink_sample_period_s", out.uplinkSamplePeriod);
    b.get("uplink_segment", out.uplinkSegment);
    b.getEnum("uplink_plane", out.uplinkPlane, kPlanes);
    b.get("detection", out.detection);
    b.getEnum("detection_kind", out.detectionKind, kEventKinds);
    b.finish();
}

void
bindVariant(const Json &doc, ScenarioSpec &out,
            const std::string &context)
{
    Binder b(doc, context);
    b.get("variant", out.variant);
    if (const Json *v = b.member("topology"))
        bindTopology(*v, out.topology, context + ".topology");
    if (const Json *v = b.member("features"))
        bindFeatures(*v, out.features, context + ".features");
    if (const Json *v = b.member("jobs")) {
        if (v->kind != Json::Kind::Array)
            b.fail(*v, "\"jobs\" must be an array");
        for (std::size_t i = 0; i < v->array.size(); ++i) {
            JobSpec job;
            bindJob(v->array[i], job,
                    context + ".jobs[" + std::to_string(i) + "]");
            out.jobs.push_back(std::move(job));
        }
    }
    if (const Json *v = b.member("allreduces")) {
        if (v->kind != Json::Kind::Array)
            b.fail(*v, "\"allreduces\" must be an array");
        for (std::size_t i = 0; i < v->array.size(); ++i) {
            AllreduceGroupSpec group;
            bindAllreduce(v->array[i], group,
                          context + ".allreduces[" +
                              std::to_string(i) + "]");
            out.allreduces.push_back(std::move(group));
        }
    }
    if (const Json *v = b.member("link_events")) {
        if (v->kind != Json::Kind::Array)
            b.fail(*v, "\"link_events\" must be an array");
        for (std::size_t i = 0; i < v->array.size(); ++i) {
            LinkEventSpec event;
            bindLinkEvent(v->array[i], event,
                          context + ".link_events[" +
                              std::to_string(i) + "]");
            out.linkEvents.push_back(event);
        }
    }
    if (const Json *v = b.member("faults")) {
        if (v->kind != Json::Kind::Array)
            b.fail(*v, "\"faults\" must be an array");
        for (std::size_t i = 0; i < v->array.size(); ++i) {
            FaultSpec faultSpec;
            bindFault(v->array[i], faultSpec,
                      context + ".faults[" + std::to_string(i) + "]");
            out.faults.push_back(faultSpec);
        }
    }
    if (const Json *v = b.member("campaign"))
        bindCampaign(*v, out.campaign, context + ".campaign");
    if (const Json *v = b.member("metrics"))
        bindMetrics(*v, out.metrics, context + ".metrics");
    b.getSeconds("horizon_s", out.horizon);
    b.getSeconds("abort_at_s", out.abortAt);
    b.get("abort_trial", out.abortTrial);
    bool custom = false;
    b.get("custom", custom);
    if (custom) {
        // The built-in this was dumped from runs code, not data; a
        // reloaded copy can only hold the variant's declarative shell.
        out.custom = [](scenario::TrialContext &) {
            throw std::runtime_error(
                "this variant was dumped from a scenario with a "
                "custom (code-defined) executor; it cannot run from "
                "a spec file");
        };
    }
    b.finish();
}

// --- writers ----------------------------------------------------------

Json
jsonString(const std::string &s)
{
    Json v;
    v.kind = Json::Kind::String;
    v.string = s;
    return v;
}

Json
jsonBool(bool b)
{
    Json v;
    v.kind = Json::Kind::Bool;
    v.boolean = b;
    return v;
}

Json
jsonInt(std::int64_t i)
{
    Json v;
    v.kind = Json::Kind::Int;
    v.integer = i;
    return v;
}

Json
jsonDouble(double d)
{
    Json v;
    v.kind = Json::Kind::Double;
    v.number = d;
    return v;
}

/** Seconds value carrying exact decimal text derived from @p ns. */
Json
jsonSeconds(Duration ns)
{
    Json v;
    const std::string text = secondsText(ns);
    if (text.find('.') == std::string::npos) {
        v.kind = Json::Kind::Int;
        v.integer = ns / 1000000000;
    } else {
        v.kind = Json::Kind::Double;
        v.raw = text;
        v.number = std::strtod(text.c_str(), nullptr);
    }
    return v;
}

Json
jsonSeed(std::uint64_t seed)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llX",
                  static_cast<unsigned long long>(seed));
    return jsonString(buf);
}

Json
jsonNodeList(const std::vector<NodeId> &nodes)
{
    Json v;
    v.kind = Json::Kind::Array;
    for (NodeId n : nodes)
        v.array.push_back(jsonInt(n));
    return v;
}

void
add(Json &obj, const char *key, Json value)
{
    Json::Member m;
    m.key = key;
    m.value = std::move(value);
    obj.object.push_back(std::move(m));
}

Json
emptyObject()
{
    Json v;
    v.kind = Json::Kind::Object;
    return v;
}

template <typename E, std::size_t N>
Json
jsonEnum(const EnumName<E> (&table)[N], E value)
{
    return jsonString(enumToName(table, value));
}

Json
topologyToJson(const TopologySpec &t)
{
    const TopologySpec def;
    Json o = emptyObject();
    if (t.kind != def.kind)
        add(o, "kind", jsonEnum(kTopologyKinds, t.kind));
    if (t.numNodes != def.numNodes)
        add(o, "num_nodes", jsonInt(t.numNodes));
    if (t.oversubscription != def.oversubscription)
        add(o, "oversubscription", jsonDouble(t.oversubscription));
    if (t.nodesPerSegment != def.nodesPerSegment)
        add(o, "nodes_per_segment", jsonInt(t.nodesPerSegment));
    if (t.nvlinkBusBandwidth != def.nvlinkBusBandwidth)
        add(o, "nvlink_bus_bw_bps", jsonDouble(t.nvlinkBusBandwidth));
    return o;
}

Json
featuresToJson(const FeatureSpec &f)
{
    const FeatureSpec def;
    Json o = emptyObject();
    if (f.c4p != def.c4p)
        add(o, "c4p", jsonBool(f.c4p));
    if (f.dualPortRule != def.dualPortRule)
        add(o, "dual_port_rule", jsonBool(f.dualPortRule));
    if (f.spineRule != def.spineRule)
        add(o, "spine_rule", jsonBool(f.spineRule));
    if (f.dynamicLoadBalance != def.dynamicLoadBalance)
        add(o, "dynamic_load_balance",
            jsonBool(f.dynamicLoadBalance));
    if (f.sprayPaths != def.sprayPaths)
        add(o, "spray_paths", jsonBool(f.sprayPaths));
    if (f.qpsPerConnection != def.qpsPerConnection)
        add(o, "qps_per_connection", jsonInt(f.qpsPerConnection));
    if (f.c4d != def.c4d)
        add(o, "c4d", jsonBool(f.c4d));
    if (f.evaluatePeriod != def.evaluatePeriod)
        add(o, "evaluate_period_s", jsonSeconds(f.evaluatePeriod));
    if (f.hangThreshold != def.hangThreshold)
        add(o, "hang_threshold_s", jsonSeconds(f.hangThreshold));
    if (f.minWaitForSlow != def.minWaitForSlow)
        add(o, "min_wait_for_slow_s", jsonSeconds(f.minWaitForSlow));
    if (f.isolateOnSlow != def.isolateOnSlow)
        add(o, "isolate_on_slow", jsonBool(f.isolateOnSlow));
    if (f.isolationDelay != def.isolationDelay)
        add(o, "isolation_delay_s", jsonSeconds(f.isolationDelay));
    if (f.backupNodes != def.backupNodes)
        add(o, "backup_nodes", jsonInt(f.backupNodes));
    if (f.fabricCoalesceWindow != def.fabricCoalesceWindow)
        add(o, "fabric_coalesce_window_s",
            jsonSeconds(f.fabricCoalesceWindow));
    return o;
}

Json
parallelToJson(const train::ParallelismSpec &p)
{
    const train::ParallelismSpec def;
    Json o = emptyObject();
    if (p.tp != def.tp)
        add(o, "tp", jsonInt(p.tp));
    if (p.pp != def.pp)
        add(o, "pp", jsonInt(p.pp));
    if (p.dp != def.dp)
        add(o, "dp", jsonInt(p.dp));
    if (p.ep != def.ep)
        add(o, "ep", jsonInt(p.ep));
    if (p.gradientAccumulation != def.gradientAccumulation)
        add(o, "gradient_accumulation",
            jsonInt(p.gradientAccumulation));
    if (p.zeroStage != def.zeroStage)
        add(o, "zero_stage", jsonInt(p.zeroStage));
    return o;
}

Json
jobToJson(const JobSpec &j)
{
    const JobSpec def;
    Json o = emptyObject();
    if (j.id != def.id)
        add(o, "id", jsonInt(j.id));
    if (!j.name.empty())
        add(o, "name", jsonString(j.name));
    if (j.model != def.model)
        add(o, "model", jsonString(j.model));
    if (j.microbatchCompute != def.microbatchCompute)
        add(o, "microbatch_compute_s",
            jsonSeconds(j.microbatchCompute));
    Json parallel = parallelToJson(j.parallel);
    if (!parallel.object.empty())
        add(o, "parallel", std::move(parallel));
    if (j.microBatch != def.microBatch)
        add(o, "micro_batch", jsonInt(j.microBatch));
    if (j.initTime != def.initTime)
        add(o, "init_time_s", jsonSeconds(j.initTime));
    if (j.dpGroupsSimulated != def.dpGroupsSimulated)
        add(o, "dp_groups_simulated", jsonInt(j.dpGroupsSimulated));
    if (j.checkpointIntervalIters != def.checkpointIntervalIters)
        add(o, "checkpoint_interval_iters",
            jsonInt(j.checkpointIntervalIters));
    if (j.checkpointCost != def.checkpointCost)
        add(o, "checkpoint_cost_s", jsonSeconds(j.checkpointCost));
    if (j.hangWatchdogTimeout != def.hangWatchdogTimeout)
        add(o, "hang_watchdog_timeout_s",
            jsonSeconds(j.hangWatchdogTimeout));
    if (!j.nodes.empty())
        add(o, "nodes", jsonNodeList(j.nodes));
    if (j.placement != def.placement)
        add(o, "placement", jsonEnum(kPlacements, j.placement));
    return o;
}

Json
allreduceToJson(const AllreduceGroupSpec &g)
{
    const AllreduceGroupSpec def;
    Json o = emptyObject();
    if (g.tasks != def.tasks)
        add(o, "tasks", jsonInt(g.tasks));
    if (g.placement != def.placement)
        add(o, "placement", jsonEnum(kTaskPlacements, g.placement));
    if (g.nodesPerTask != def.nodesPerTask)
        add(o, "nodes_per_task", jsonInt(g.nodesPerTask));
    if (!g.explicitNodes.empty()) {
        Json lists;
        lists.kind = Json::Kind::Array;
        for (const std::vector<NodeId> &nodes : g.explicitNodes)
            lists.array.push_back(jsonNodeList(nodes));
        add(o, "explicit_nodes", std::move(lists));
    }
    if (g.bytes != def.bytes)
        add(o, "bytes", jsonInt(g.bytes));
    if (g.iterations != def.iterations)
        add(o, "iterations", jsonInt(g.iterations));
    return o;
}

Json
linkEventToJson(const LinkEventSpec &e)
{
    const LinkEventSpec def;
    Json o = emptyObject();
    if (e.at != def.at)
        add(o, "at_s", jsonSeconds(e.at));
    if (e.segment != def.segment)
        add(o, "segment", jsonInt(e.segment));
    if (e.plane != def.plane)
        add(o, "plane", jsonEnum(kPlanes, e.plane));
    if (e.spine != def.spine)
        add(o, "spine", jsonInt(e.spine));
    if (e.up != def.up)
        add(o, "up", jsonBool(e.up));
    return o;
}

Json
faultToJson(const FaultSpec &f)
{
    const FaultSpec def;
    Json o = emptyObject();
    if (f.at != def.at)
        add(o, "at_s", jsonSeconds(f.at));
    if (f.type != def.type)
        add(o, "type", jsonEnum(kFaultTypes, f.type));
    if (f.job != def.job)
        add(o, "job", jsonInt(f.job));
    if (f.jobNodeIndex != def.jobNodeIndex)
        add(o, "job_node_index", jsonInt(f.jobNodeIndex));
    if (f.node != def.node)
        add(o, "node", jsonInt(f.node));
    if (f.allNics != def.allNics)
        add(o, "all_nics", jsonBool(f.allNics));
    if (f.nic != def.nic)
        add(o, "nic", jsonInt(f.nic));
    if (f.severity != def.severity)
        add(o, "severity", jsonDouble(f.severity));
    return o;
}

Json
campaignToJson(const CampaignSpec &c)
{
    const CampaignSpec def;
    Json o = emptyObject();
    if (c.enabled != def.enabled)
        add(o, "enabled", jsonBool(c.enabled));
    if (c.rates != def.rates)
        add(o, "rates", jsonEnum(kCampaignRates, c.rates));
    if (c.scale != def.scale)
        add(o, "scale", jsonDouble(c.scale));
    if (c.span != def.span)
        add(o, "span_s", jsonSeconds(c.span));
    return o;
}

Json
metricsToJson(const MetricsSpec &m)
{
    const MetricsSpec def;
    Json o = emptyObject();
    if (m.taskBusBw != def.taskBusBw)
        add(o, "task_busbw", jsonBool(m.taskBusBw));
    if (m.perTask != def.perTask)
        add(o, "per_task", jsonBool(m.perTask));
    if (m.splitAt != def.splitAt)
        add(o, "split_at_s", jsonSeconds(m.splitAt));
    if (m.jobThroughput != def.jobThroughput)
        add(o, "job_throughput", jsonBool(m.jobThroughput));
    if (m.jobCommShare != def.jobCommShare)
        add(o, "job_comm_share", jsonBool(m.jobCommShare));
    if (m.jobSegments != def.jobSegments)
        add(o, "job_segments", jsonBool(m.jobSegments));
    if (m.steeringCounters != def.steeringCounters)
        add(o, "steering_counters", jsonBool(m.steeringCounters));
    if (m.cnpSamplePeriod != def.cnpSamplePeriod)
        add(o, "cnp_sample_period_s", jsonSeconds(m.cnpSamplePeriod));
    if (m.cnpNic != def.cnpNic)
        add(o, "cnp_nic", jsonInt(m.cnpNic));
    if (m.uplinkSamplePeriod != def.uplinkSamplePeriod)
        add(o, "uplink_sample_period_s",
            jsonSeconds(m.uplinkSamplePeriod));
    if (m.uplinkSegment != def.uplinkSegment)
        add(o, "uplink_segment", jsonInt(m.uplinkSegment));
    if (m.uplinkPlane != def.uplinkPlane)
        add(o, "uplink_plane", jsonEnum(kPlanes, m.uplinkPlane));
    if (m.detection != def.detection)
        add(o, "detection", jsonBool(m.detection));
    if (m.detectionKind != def.detectionKind)
        add(o, "detection_kind",
            jsonEnum(kEventKinds, m.detectionKind));
    return o;
}

Json
variantToJson(const ScenarioSpec &spec)
{
    Json o = emptyObject();
    add(o, "variant", jsonString(spec.variant));
    Json topology = topologyToJson(spec.topology);
    if (!topology.object.empty())
        add(o, "topology", std::move(topology));
    Json features = featuresToJson(spec.features);
    if (!features.object.empty())
        add(o, "features", std::move(features));
    if (!spec.jobs.empty()) {
        Json jobs;
        jobs.kind = Json::Kind::Array;
        for (const JobSpec &j : spec.jobs)
            jobs.array.push_back(jobToJson(j));
        add(o, "jobs", std::move(jobs));
    }
    if (!spec.allreduces.empty()) {
        Json groups;
        groups.kind = Json::Kind::Array;
        for (const AllreduceGroupSpec &g : spec.allreduces)
            groups.array.push_back(allreduceToJson(g));
        add(o, "allreduces", std::move(groups));
    }
    if (!spec.linkEvents.empty()) {
        Json events;
        events.kind = Json::Kind::Array;
        for (const LinkEventSpec &e : spec.linkEvents)
            events.array.push_back(linkEventToJson(e));
        add(o, "link_events", std::move(events));
    }
    if (!spec.faults.empty()) {
        Json faults;
        faults.kind = Json::Kind::Array;
        for (const FaultSpec &f : spec.faults)
            faults.array.push_back(faultToJson(f));
        add(o, "faults", std::move(faults));
    }
    Json campaign = campaignToJson(spec.campaign);
    if (!campaign.object.empty())
        add(o, "campaign", std::move(campaign));
    Json metrics = metricsToJson(spec.metrics);
    if (!metrics.object.empty())
        add(o, "metrics", std::move(metrics));
    if (spec.horizon != 0)
        add(o, "horizon_s", jsonSeconds(spec.horizon));
    if (spec.abortAt != 0)
        add(o, "abort_at_s", jsonSeconds(spec.abortAt));
    if (spec.abortTrial != -1)
        add(o, "abort_trial", jsonInt(spec.abortTrial));
    if (spec.custom)
        add(o, "custom", jsonBool(true));
    return o;
}

bool
validName(const std::string &name)
{
    if (name.empty())
        return false;
    for (char c : name) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) ||
              c == '_' || c == '-' || c == '.')) {
            return false;
        }
    }
    return true;
}

} // namespace

SpecFile
specFromScenario(const Scenario &scenario, const RunOptions &opt)
{
    SpecFile file;
    file.name = scenario.name;
    file.title = scenario.title;
    file.description = scenario.description;
    file.notes = scenario.notes;
    file.fullTrials = scenario.fullTrials;
    file.smokeTrials = scenario.smokeTrials;
    file.serialTrials = scenario.serialTrials;
    // The dump captures the run the flags describe, not the built-in
    // defaults: an overridden seed / trial count must replay from the
    // file exactly as it ran.
    file.seed = opt.seedSet ? opt.seed : scenario.seed;
    if (opt.trials > 0) {
        (opt.smoke ? file.smokeTrials : file.fullTrials) = opt.trials;
    }
    file.trialBegin = scenario.trialBegin;
    file.trialCount = scenario.trialCount;
    file.variants = scenario.variants(opt);
    return file;
}

Scenario
scenarioFromSpec(const SpecFile &file)
{
    Scenario s;
    s.name = file.name;
    s.title = file.title;
    s.description = file.description;
    s.notes = file.notes;
    s.fullTrials = file.fullTrials;
    s.smokeTrials = file.smokeTrials;
    s.serialTrials = file.serialTrials;
    s.trialBegin = file.trialBegin;
    s.trialCount = file.trialCount;
    s.seed = file.seed;
    s.variants = [variants = file.variants](const RunOptions &) {
        return variants;
    };
    return s;
}

std::string
writeSpecFile(const SpecFile &file)
{
    Json doc = emptyObject();
    add(doc, "scenario", jsonString(file.name));
    if (!file.title.empty())
        add(doc, "title", jsonString(file.title));
    if (!file.description.empty())
        add(doc, "description", jsonString(file.description));
    if (!file.notes.empty())
        add(doc, "notes", jsonString(file.notes));
    if (file.fullTrials != 1)
        add(doc, "full_trials", jsonInt(file.fullTrials));
    if (file.smokeTrials != 1)
        add(doc, "smoke_trials", jsonInt(file.smokeTrials));
    if (file.serialTrials)
        add(doc, "serial_trials", jsonBool(true));
    if (file.trialBegin != 0)
        add(doc, "trial_begin", jsonInt(file.trialBegin));
    if (file.trialCount != 0)
        add(doc, "trial_count", jsonInt(file.trialCount));
    add(doc, "seed", jsonSeed(file.seed));
    Json variants;
    variants.kind = Json::Kind::Array;
    for (const ScenarioSpec &spec : file.variants)
        variants.array.push_back(variantToJson(spec));
    add(doc, "variants", std::move(variants));
    return writeJson(doc);
}

SpecFile
parseSpecFile(const std::string &text)
{
    const Json doc = parseJson(text);
    SpecFile file;
    Binder b(doc, "the spec document");
    b.get("scenario", file.name);
    if (!validName(file.name)) {
        throw SpecError("\"scenario\" must name the scenario "
                        "([A-Za-z0-9_.-]+, required)",
                        doc.line, doc.column);
    }
    b.get("title", file.title);
    b.get("description", file.description);
    b.get("notes", file.notes);
    b.get("full_trials", file.fullTrials);
    b.get("smoke_trials", file.smokeTrials);
    b.get("serial_trials", file.serialTrials);
    b.get("trial_begin", file.trialBegin);
    b.get("trial_count", file.trialCount);
    b.getSeed("seed", file.seed);
    const Json *variants = b.member("variants");
    if (!variants || variants->kind != Json::Kind::Array ||
        variants->array.empty()) {
        throw SpecError("\"variants\" must be a non-empty array",
                        variants ? variants->line : doc.line,
                        variants ? variants->column : doc.column);
    }
    if (file.fullTrials < 1 || file.smokeTrials < 1) {
        throw SpecError("trial counts must be >= 1", doc.line,
                        doc.column);
    }
    // Shard range sanity against the file's own sweep width. The
    // runner re-validates against whatever trial count is actually in
    // effect (--trials can override), so this catches authoring
    // mistakes early, with the file's line info.
    const std::string badRange = scenario::validateTrialRange(
        file.trialBegin, file.trialCount,
        std::max(file.fullTrials, file.smokeTrials));
    if (!badRange.empty())
        throw SpecError(badRange, doc.line, doc.column);
    for (std::size_t i = 0; i < variants->array.size(); ++i) {
        const Json &v = variants->array[i];
        ScenarioSpec spec;
        bindVariant(v, spec,
                    "variants[" + std::to_string(i) + "]");
        const std::string invalid = scenario::validateSpec(spec);
        if (!invalid.empty())
            throw SpecError(invalid, v.line, v.column);
        // A duplicated label (the copy-a-variant-block-and-forget-
        // to-rename mistake) would silently aggregate two different
        // configs into one table column / CSV key.
        for (const ScenarioSpec &seen : file.variants) {
            if (seen.variant == spec.variant) {
                throw SpecError("duplicate variant label \"" +
                                    spec.variant + "\"",
                                v.line, v.column);
            }
        }
        file.variants.push_back(std::move(spec));
    }
    b.finish();
    return file;
}

SpecFile
loadSpecFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SpecError(path + ": cannot open spec file", 0, 0);
    std::ostringstream text;
    text << in.rdbuf();
    try {
        return parseSpecFile(text.str());
    } catch (const SpecError &e) {
        throw SpecError(path + ": " + e.what(), 0, 0);
    }
}

void
installSpecCliHooks()
{
    scenario::SpecCliHooks hooks;
    hooks.loadAndRegister = [](const std::string &path) {
        SpecFile file = loadSpecFile(path);
        const bool replaced =
            scenario::Registry::instance().addOrReplace(
                scenarioFromSpec(file));
        if (replaced) {
            std::fprintf(stderr,
                         "note: spec file '%s' replaces registered "
                         "scenario '%s'\n",
                         path.c_str(), file.name.c_str());
        }
        return file.name;
    };
    hooks.dump = [](const Scenario &scenario, const RunOptions &opt) {
        return writeSpecFile(specFromScenario(scenario, opt));
    };
    scenario::setSpecCliHooks(std::move(hooks));
}

} // namespace c4::specio
