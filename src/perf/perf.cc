#include "perf/perf.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>

#include <sys/resource.h>

#include "common/json.h"
#include "net/fabric.h"
#include "perf/legacy_kernel.h"
#include "scenario/registry.h"
#include "scenario/workload.h"
#include "sim/simulator.h"

namespace c4::perf {
namespace {

using Clock = std::chrono::steady_clock;

/** Deterministic splitmix-style stream; the harness must schedule the
 * same event sequence on both kernels and on every machine. */
struct Lcg
{
    std::uint64_t s = 0x853c49e6748fea9bull;

    std::uint64_t
    next()
    {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        return s >> 33;
    }
};

/**
 * Mixed-horizon delay stream: 7/8 short (1–17 us, the flow-completion
 * scale) and 1/8 long (1–17 ms, the timer/checkpoint scale). Matches
 * the timestamp structure real scenarios produce — mostly near-future
 * events with a long-tail pending population of far timers — rather
 * than an artificially tie-heavy uniform range.
 */
Duration
mixedDelay(Lcg &rng)
{
    const std::uint64_t r = rng.next();
    if ((r & 7) != 0)
        return static_cast<Duration>(r % 16000 + 1000);
    return static_cast<Duration>(r % 16000000 + 1000000);
}

/**
 * Self-rescheduling ticker. Trivially copyable and 32 bytes, so the
 * pooled kernel stores it inline while std::function (legacy) must
 * heap-allocate it — exactly the asymmetry real capture lists hit.
 */
template <typename Kernel>
struct Ticker
{
    Kernel *kernel;
    Lcg *rng;
    std::uint64_t *remaining;
    std::uint64_t salt; // pads the capture to a realistic size

    void
    operator()() const
    {
        if (*remaining == 0)
            return;
        --*remaining;
        kernel->scheduleAfter(mixedDelay(*rng), *this);
    }
};

/** Steady-state schedule/fire throughput at a pinned population. */
template <typename Kernel>
std::uint64_t
runSchedFire(std::uint64_t events)
{
    constexpr std::size_t kPopulation = 1024;
    Kernel kernel;
    Lcg rng;
    std::uint64_t remaining = events;
    const Ticker<Kernel> ticker{&kernel, &rng, &remaining, 0x5a5a5a5aull};
    for (std::size_t i = 0; i < kPopulation; ++i)
        kernel.scheduleAt(static_cast<Time>(rng.next() % 1000000),
                          ticker);
    kernel.run();
    return kernel.executedCount();
}

/**
 * Watchdog churn: a ring of far-future timers that are almost always
 * cancelled and rearmed before coming due, with a sliced run() every
 * 64 ops — the hang-watchdog / failure-timeout pattern in train:: and
 * c4d::, and the dominant event-kernel traffic under job churn.
 */
template <typename Kernel>
void
runCancelChurn(std::uint64_t ops)
{
    constexpr std::size_t kRing = 1024;
    Kernel kernel;
    Lcg rng;
    std::vector<decltype(kernel.scheduleAt(0, [] {}))> ring(kRing);
    for (std::size_t i = 0; i < kRing; ++i)
        ring[i] = kernel.scheduleAt(
            static_cast<Time>(5000000 + rng.next() % 5000000), [] {});
    for (std::uint64_t i = 0; i < ops; ++i) {
        kernel.cancel(ring[i % kRing]);
        ring[i % kRing] = kernel.scheduleAt(
            kernel.now() + 5000000 +
                static_cast<Duration>(rng.next() % 5000000),
            [] {});
        if (i % 64 == 0)
            kernel.run(kernel.now() + 20000);
    }
    kernel.run();
}

/** Burst-drain: schedule everything, then drain — the spike shape of
 * collective-round completion storms (and the classic DES stressor). */
template <typename Kernel>
void
runBurstDrain(std::uint64_t events)
{
    Kernel kernel;
    Lcg rng;
    std::uint64_t fired = 0;
    for (std::uint64_t i = 0; i < events; ++i)
        kernel.scheduleAt(static_cast<Time>(rng.next() % 10000000),
                          [&fired] { ++fired; });
    kernel.run();
}

/** Wall clock of the fabric's incremental recompute under repeated
 * trunk-link flaps (the micro_core fabric_realloc shape). */
void
runFabricRecompute(std::uint64_t toggles)
{
    constexpr int kFlows = 256;
    net::TopologyConfig tc;
    tc.numNodes = 64;
    tc.nodesPerSegment = 4;
    net::Topology topo(tc);
    Simulator sim;
    net::FabricConfig fc;
    fc.congestionJitter = false;
    net::Fabric fabric(sim, topo, fc);

    std::uint32_t label = 0;
    for (int i = 0; i < kFlows; ++i) {
        net::PathRequest req;
        req.srcNode = i % 32;
        req.srcNic = i % 8;
        req.dstNode = 32 + (i % 32);
        req.dstNic = i % 8;
        req.flowLabel = ++label;
        fabric.startFlow(req, gib(100), nullptr);
    }
    (void)fabric.flowRate(1); // force one consistent allocation

    for (std::uint64_t r = 0; r < toggles; ++r) {
        fabric.setLinkUp(topo.trunkUplink(0, 0), false);
        (void)fabric.linkThroughput(0);
        fabric.setLinkUp(topo.trunkUplink(0, 0), true);
        (void)fabric.linkThroughput(0);
    }
}

/** One smoke trial of the churn_multijob scenario, end to end. */
void
runChurnMultijobSmoke()
{
    const scenario::Scenario *sc =
        scenario::Registry::instance().find("churn_multijob");
    if (sc == nullptr)
        throw std::runtime_error(
            "churn_multijob scenario not linked into this binary");
    scenario::RunOptions opt;
    opt.smoke = true;
    const auto variants = sc->variants(opt);
    if (variants.empty())
        throw std::runtime_error("churn_multijob produced no variants");
    const scenario::ScenarioSpec &spec = variants.front();
    scenario::TrialContext ctx(opt, sc->seed, 0);
    if (spec.custom)
        spec.custom(ctx);
    else
        scenario::runSpecTrial(spec, ctx);
}

struct Workload
{
    const char *name;
    std::uint64_t itemsFull;
    std::uint64_t itemsSmoke;
    std::function<void(std::uint64_t items)> fn;
};

std::vector<Workload>
workloadSet()
{
    return {
        {"kernel_sched_fire_pooled", 2000000, 100000,
         [](std::uint64_t n) { runSchedFire<Simulator>(n); }},
        {"kernel_sched_fire_legacy", 2000000, 100000,
         [](std::uint64_t n) { runSchedFire<LegacySimulator>(n); }},
        {"kernel_cancel_churn_pooled", 2000000, 100000,
         [](std::uint64_t n) { runCancelChurn<Simulator>(n); }},
        {"kernel_cancel_churn_legacy", 2000000, 100000,
         [](std::uint64_t n) { runCancelChurn<LegacySimulator>(n); }},
        {"kernel_burst_drain_pooled", 500000, 50000,
         [](std::uint64_t n) { runBurstDrain<Simulator>(n); }},
        {"kernel_burst_drain_legacy", 500000, 50000,
         [](std::uint64_t n) { runBurstDrain<LegacySimulator>(n); }},
        {"scenario_fabric_recompute", 200, 10,
         [](std::uint64_t n) { runFabricRecompute(n); }},
        {"scenario_churn_multijob_smoke", 1, 1,
         [](std::uint64_t) { runChurnMultijobSmoke(); }},
    };
}

/** ru_maxrss: the process heap high-water mark, in KiB on Linux. */
std::uint64_t
peakRssKbNow()
{
    struct rusage usage = {};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    return static_cast<std::uint64_t>(usage.ru_maxrss);
}

std::uint64_t
medianOf(std::vector<std::uint64_t> ns)
{
    std::sort(ns.begin(), ns.end());
    const std::size_t n = ns.size();
    if (n == 0)
        return 0;
    // Even count: lower-median keeps the value an actually-observed
    // rep (and the statistic integral).
    return ns[(n - 1) / 2];
}

} // namespace

PerfReport
runPerf(const PerfOptions &opt)
{
    PerfReport report;
    for (const Workload &w : workloadSet()) {
        if (!opt.only.empty() &&
            std::string(w.name).find(opt.only) == std::string::npos)
            continue;
        const std::uint64_t items =
            opt.smoke ? w.itemsSmoke : w.itemsFull;
        for (int i = 0; i < opt.warmup; ++i)
            w.fn(items);
        std::vector<std::uint64_t> ns;
        std::vector<std::uint64_t> allocCounts;
        std::vector<std::uint64_t> allocBytes;
        ns.reserve(static_cast<std::size_t>(std::max(opt.reps, 1)));
        for (int i = 0; i < std::max(opt.reps, 1); ++i) {
            const AllocStats before = allocStatsNow();
            const auto start = Clock::now();
            w.fn(items);
            ns.push_back(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - start)
                    .count()));
            const AllocStats after = allocStatsNow();
            allocCounts.push_back(after.count - before.count);
            allocBytes.push_back(after.bytes - before.bytes);
        }
        WorkloadResult r;
        r.name = w.name;
        r.reps = static_cast<int>(ns.size());
        r.warmup = opt.warmup;
        r.itemsPerRep = items;
        r.medianNs = medianOf(ns);
        r.minNs = *std::min_element(ns.begin(), ns.end());
        r.itemsPerSecMedian =
            r.medianNs > 0
                ? static_cast<double>(items) * 1e9 /
                      static_cast<double>(r.medianNs)
                : 0.0;
        r.itemsPerSecBest =
            r.minNs > 0 ? static_cast<double>(items) * 1e9 /
                              static_cast<double>(r.minNs)
                        : 0.0;
        // Medians keep a one-off lazy initialization (first use of a
        // static, an arena growth) in an early rep from skewing the
        // reported steady-state heap traffic.
        r.allocCount = medianOf(allocCounts);
        r.allocBytes = medianOf(allocBytes);
        r.peakRssKb = peakRssKbNow();
        report.workloads.push_back(std::move(r));
    }

    // Derive pooled-vs-legacy speedups for every measured pair.
    for (const WorkloadResult &pooled : report.workloads) {
        const std::string suffix = "_pooled";
        if (pooled.name.size() <= suffix.size() ||
            pooled.name.compare(pooled.name.size() - suffix.size(),
                                suffix.size(), suffix) != 0)
            continue;
        const std::string stem =
            pooled.name.substr(0, pooled.name.size() - suffix.size());
        for (const WorkloadResult &legacy : report.workloads) {
            if (legacy.name != stem + "_legacy")
                continue;
            KernelRatio ratio;
            ratio.name = stem;
            if (legacy.itemsPerSecMedian > 0)
                ratio.speedupMedian = pooled.itemsPerSecMedian /
                                      legacy.itemsPerSecMedian;
            if (legacy.itemsPerSecBest > 0)
                ratio.speedupBest =
                    pooled.itemsPerSecBest / legacy.itemsPerSecBest;
            report.ratios.push_back(std::move(ratio));
        }
    }
    return report;
}

std::string
perfReportJson(const PerfReport &report, const PerfOptions &opt)
{
    Json root;
    root.kind = Json::Kind::Object;
    auto member = [](std::string key, Json value) {
        Json::Member m;
        m.key = std::move(key);
        m.value = std::move(value);
        return m;
    };
    auto str = [](std::string v) {
        Json j;
        j.kind = Json::Kind::String;
        j.string = std::move(v);
        return j;
    };
    auto integer = [](std::uint64_t v) {
        Json j;
        j.kind = Json::Kind::Int;
        j.integer = static_cast<std::int64_t>(v);
        return j;
    };
    auto dbl = [](double v) {
        Json j;
        j.kind = Json::Kind::Double;
        j.number = v;
        return j;
    };

    root.object.push_back(member("schema", str("c4perf/2")));
    root.object.push_back(
        member("mode", str(opt.smoke ? "smoke" : "full")));

    Json workloads;
    workloads.kind = Json::Kind::Array;
    for (const WorkloadResult &r : report.workloads) {
        Json w;
        w.kind = Json::Kind::Object;
        w.object.push_back(member("name", str(r.name)));
        w.object.push_back(member("reps", integer(
                                              static_cast<std::uint64_t>(
                                                  r.reps))));
        w.object.push_back(
            member("warmup",
                   integer(static_cast<std::uint64_t>(r.warmup))));
        w.object.push_back(
            member("items_per_rep", integer(r.itemsPerRep)));
        w.object.push_back(member("median_ns", integer(r.medianNs)));
        w.object.push_back(member("min_ns", integer(r.minNs)));
        w.object.push_back(
            member("items_per_sec_median", dbl(r.itemsPerSecMedian)));
        w.object.push_back(
            member("items_per_sec_best", dbl(r.itemsPerSecBest)));
        // c4perf/2 memory columns.
        w.object.push_back(
            member("alloc_count", integer(r.allocCount)));
        w.object.push_back(
            member("alloc_bytes", integer(r.allocBytes)));
        w.object.push_back(
            member("peak_rss_kb", integer(r.peakRssKb)));
        workloads.array.push_back(std::move(w));
    }
    root.object.push_back(member("workloads", std::move(workloads)));

    Json ratios;
    ratios.kind = Json::Kind::Array;
    for (const KernelRatio &r : report.ratios) {
        Json j;
        j.kind = Json::Kind::Object;
        j.object.push_back(member("name", str(r.name)));
        j.object.push_back(
            member("pooled_vs_legacy_median", dbl(r.speedupMedian)));
        j.object.push_back(
            member("pooled_vs_legacy_best", dbl(r.speedupBest)));
        ratios.array.push_back(std::move(j));
    }
    root.object.push_back(member("ratios", std::move(ratios)));
    return writeJson(root) + "\n";
}

std::string
perfReportText(const PerfReport &report)
{
    std::ostringstream out;
    char line[256];
    std::snprintf(line, sizeof line,
                  "%-32s %10s %14s %14s %14s %12s %12s\n", "workload",
                  "items/rep", "median ms", "min ms", "items/s (med)",
                  "allocs/rep", "rss KiB");
    out << line;
    for (const WorkloadResult &r : report.workloads) {
        std::snprintf(
            line, sizeof line,
            "%-32s %10llu %14.3f %14.3f %14.0f %12llu %12llu\n",
            r.name.c_str(),
            static_cast<unsigned long long>(r.itemsPerRep),
            static_cast<double>(r.medianNs) / 1e6,
            static_cast<double>(r.minNs) / 1e6, r.itemsPerSecMedian,
            static_cast<unsigned long long>(r.allocCount),
            static_cast<unsigned long long>(r.peakRssKb));
        out << line;
    }
    for (const KernelRatio &r : report.ratios) {
        std::snprintf(line, sizeof line,
                      "%-32s pooled/legacy speedup: %.2fx median, "
                      "%.2fx best\n",
                      r.name.c_str(), r.speedupMedian, r.speedupBest);
        out << line;
    }
    return out.str();
}

int
perfMain(int argc, char **argv)
{
    PerfOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "c4bench: %s needs a value\n",
                             flag);
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--perf") {
            continue;
        } else if (arg == "--smoke") {
            opt.smoke = true;
        } else if (arg == "--perf-json") {
            const char *v = value("--perf-json");
            if (v == nullptr)
                return 2;
            opt.jsonPath = v;
        } else if (arg == "--perf-reps") {
            const char *v = value("--perf-reps");
            if (v == nullptr)
                return 2;
            opt.reps = std::atoi(v);
            if (opt.reps < 1) {
                std::fprintf(stderr,
                             "c4bench: --perf-reps must be >= 1\n");
                return 2;
            }
        } else if (arg == "--perf-warmup") {
            const char *v = value("--perf-warmup");
            if (v == nullptr)
                return 2;
            opt.warmup = std::atoi(v);
            if (opt.warmup < 0) {
                std::fprintf(stderr,
                             "c4bench: --perf-warmup must be >= 0\n");
                return 2;
            }
        } else if (arg == "--perf-only") {
            const char *v = value("--perf-only");
            if (v == nullptr)
                return 2;
            opt.only = v;
        } else {
            std::fprintf(stderr,
                         "c4bench: unknown --perf flag '%s' "
                         "(flags: --smoke --perf-json FILE --perf-reps "
                         "N --perf-warmup N --perf-only SUBSTR)\n",
                         arg.c_str());
            return 2;
        }
    }

    PerfReport report;
    try {
        report = runPerf(opt);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "c4bench --perf: %s\n", e.what());
        return 1;
    }
    if (report.workloads.empty()) {
        std::fprintf(stderr,
                     "c4bench --perf: no workload matches '%s'\n",
                     opt.only.c_str());
        return 1;
    }
    std::fputs(perfReportText(report).c_str(), stdout);
    if (!opt.jsonPath.empty()) {
        std::ofstream out(opt.jsonPath, std::ios::binary);
        if (!out) {
            std::fprintf(stderr,
                         "c4bench --perf: cannot write '%s'\n",
                         opt.jsonPath.c_str());
            return 1;
        }
        out << perfReportJson(report, opt);
    }
    return 0;
}

} // namespace c4::perf
