/**
 * @file
 * The pre-pooled event kernel, preserved verbatim for side-by-side
 * wall-clock measurement (`c4bench --perf`).
 *
 * This is the Simulator the repo shipped before the pooled rewrite: a
 * `std::priority_queue` of (when, seq, id) entries over an
 * `unordered_map<EventId, std::function>` of live callbacks. Every
 * schedule pays a map-node allocation (plus a std::function heap
 * allocation once the capture outgrows its small buffer), every fire
 * pays a find + move + erase, and run() probes the map once more per
 * peek while skipping tombstones. Keeping it compiled — not just in
 * git history — means every future `BENCH_7.json` keeps an honest
 * baseline column, and the equivalence tests can hold the pooled
 * kernel to the exact legacy fire order.
 *
 * Only the event-kernel surface is replicated (schedule / cancel /
 * run / step / clear / introspection); tracing and PeriodicTask are
 * not part of the measured contract.
 */

#ifndef C4_PERF_LEGACY_KERNEL_H
#define C4_PERF_LEGACY_KERNEL_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace c4::perf {

/** Event handle; same width and invalid value as the real kernel. */
using LegacyEventId = std::uint64_t;
constexpr LegacyEventId kLegacyInvalidEvent = 0;

class LegacySimulator
{
  public:
    using Callback = std::function<void()>;

    Time now() const { return now_; }

    LegacyEventId
    scheduleAt(Time when, Callback fn)
    {
        assert(fn);
        if (when < now_)
            when = now_; // clamp: events cannot fire in the past
        const LegacyEventId id = nextId_++;
        queue_.push(Entry{when, nextSeq_++, id});
        live_.emplace(id, std::move(fn));
        return id;
    }

    LegacyEventId
    scheduleAfter(Duration delay, Callback fn)
    {
        assert(delay >= 0);
        // Saturate instead of overflowing for "never"-ish delays.
        const Time when =
            delay >= kTimeNever - now_ ? kTimeNever : now_ + delay;
        return scheduleAt(when, std::move(fn));
    }

    bool cancel(LegacyEventId id) { return live_.erase(id) > 0; }

    bool pending(LegacyEventId id) const { return live_.count(id) > 0; }

    std::size_t pendingCount() const { return live_.size(); }

    bool
    step()
    {
        while (!queue_.empty()) {
            Entry top = queue_.top();
            queue_.pop();
            auto it = live_.find(top.id);
            if (it == live_.end())
                continue; // cancelled; skip tombstone
            Callback fn = std::move(it->second);
            live_.erase(it);
            now_ = top.when;
            ++executed_;
            fn();
            return true;
        }
        return false;
    }

    std::uint64_t
    run(Time until = kTimeNever)
    {
        std::uint64_t n = 0;
        while (!queue_.empty()) {
            // Peek past tombstones to find the next live event time.
            while (!queue_.empty() && !live_.count(queue_.top().id))
                queue_.pop();
            if (queue_.empty())
                break;
            if (queue_.top().when > until)
                break;
            if (step())
                ++n;
        }
        if (until != kTimeNever && now_ < until)
            now_ = until;
        return n;
    }

    void
    clear()
    {
        queue_ = {};
        live_.clear();
    }

    std::uint64_t executedCount() const { return executed_; }

  private:
    struct Entry
    {
        Time when;
        std::uint64_t seq; // tie-break: FIFO among same-time events
        LegacyEventId id;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    Time now_ = 0;
    std::uint64_t nextSeq_ = 1;
    LegacyEventId nextId_ = 1;
    std::uint64_t executed_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        queue_;
    std::unordered_map<LegacyEventId, Callback> live_;
};

} // namespace c4::perf

#endif // C4_PERF_LEGACY_KERNEL_H
