/**
 * @file
 * Wall-clock performance harness behind `c4bench --perf`.
 *
 * Runs a pinned set of workloads — pooled-vs-legacy event-kernel
 * microbenchmarks plus two scenario-level measurements — with a warmup
 * pass and repeated timed reps, reports median/min wall-clock and
 * items/sec, and (optionally) writes a stable-schema JSON file
 * (`BENCH_7.json`) so perf trajectories accumulate across PRs the way
 * golden CSVs accumulate correctness.
 *
 * This is deliberately separate from the golden gate: golden CSVs pin
 * *metric values* byte-for-byte and must never change by accident;
 * perf numbers are machine-dependent by nature, so the gate here
 * (`ctest -L perf-smoke`) pins only that the harness runs and the JSON
 * schema holds. The recorded numbers are for humans and trend tooling.
 */

#ifndef C4_PERF_PERF_H
#define C4_PERF_PERF_H

#include <cstdint>
#include <string>
#include <vector>

namespace c4::perf {

/** Harness options (`c4bench --perf [flags]`). */
struct PerfOptions
{
    /** Timed repetitions per workload (median/min over these). */
    int reps = 5;

    /** Untimed warmup passes per workload. */
    int warmup = 1;

    /** Shrink every workload's item count (seconds-scale pass; numbers
     * are NOT comparable with full runs). Set by `--smoke`. */
    bool smoke = false;

    /** Run only workloads whose name contains this substring. */
    std::string only;

    /** Write the JSON report here; empty = no file. */
    std::string jsonPath;
};

/**
 * Process-wide allocation counters (see alloc_hooks.cc). Monotonic:
 * callers snapshot before and after a region and subtract.
 */
struct AllocStats
{
    std::uint64_t count = 0; ///< operator-new calls since start
    std::uint64_t bytes = 0; ///< bytes requested since start
};

/** Current allocation counters for this process. */
AllocStats allocStatsNow();

/** One workload's measurement. */
struct WorkloadResult
{
    std::string name;
    int reps = 0;
    int warmup = 0;
    /** Work items (events, churn ops, recompute toggles) per rep. */
    std::uint64_t itemsPerRep = 0;
    std::uint64_t medianNs = 0;
    std::uint64_t minNs = 0;
    double itemsPerSecMedian = 0.0;
    double itemsPerSecBest = 0.0;
    /** Median per-rep heap traffic across the timed reps. */
    std::uint64_t allocCount = 0;
    std::uint64_t allocBytes = 0;
    /** ru_maxrss after this workload's reps — a process-wide high-
     * water mark, so it is monotone across the workload sequence and
     * only the per-workload increase is attributable. */
    std::uint64_t peakRssKb = 0;
};

/** Pooled-vs-legacy speedup derived from a workload pair. */
struct KernelRatio
{
    std::string name; ///< shared stem, e.g. "kernel_sched_fire"
    double speedupMedian = 0.0; ///< pooled / legacy, median items/sec
    double speedupBest = 0.0;   ///< pooled / legacy, best items/sec
};

/** Everything one harness invocation produced. */
struct PerfReport
{
    std::vector<WorkloadResult> workloads;
    std::vector<KernelRatio> ratios;
};

/** Run the pinned workload set (filtered by @p opt.only). */
PerfReport runPerf(const PerfOptions &opt);

/** Serialize canonically under the `c4perf/2` schema (v2 adds the
 * per-workload alloc_count / alloc_bytes / peak_rss_kb memory
 * columns; trend tooling accepts both versions). */
std::string perfReportJson(const PerfReport &report,
                           const PerfOptions &opt);

/** Human-readable table + ratio lines, as printed by the CLI. */
std::string perfReportText(const PerfReport &report);

/**
 * CLI entry: parses --smoke / --perf-reps / --perf-warmup /
 * --perf-only / --perf-json from @p argv (ignoring the --perf flag
 * itself), runs the harness, prints the text report, writes the JSON
 * file when requested. Returns a process exit code.
 */
int perfMain(int argc, char **argv);

} // namespace c4::perf

#endif // C4_PERF_PERF_H
