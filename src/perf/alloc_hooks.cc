/**
 * @file
 * Process-wide allocation counters behind `c4bench --perf`.
 *
 * Replaces the global operator new/delete family with thin malloc/
 * free wrappers that bump two relaxed atomics, so the harness can
 * report an allocation count and byte total per workload next to its
 * wall-clock numbers. malloc-based (not a custom arena) so the
 * sanitizer builds keep their heap instrumentation underneath.
 *
 * The counters are monotonic and process-wide; callers measure
 * deltas around the region of interest (see runPerf). The hooks land
 * in every binary that links c4::perf — perf.cc references
 * allocStatsNow(), which pulls this archive member in.
 */

#include <atomic>
#include <cstdlib>
#include <new>

#include "perf/perf.h"

namespace {

std::atomic<std::uint64_t> gAllocCount{0};
std::atomic<std::uint64_t> gAllocBytes{0};

void *
countedAlloc(std::size_t size)
{
    // malloc(0) may return null; operator new must not.
    void *p = std::malloc(size > 0 ? size : 1);
    if (p == nullptr)
        throw std::bad_alloc();
    gAllocCount.fetch_add(1, std::memory_order_relaxed);
    gAllocBytes.fetch_add(size, std::memory_order_relaxed);
    return p;
}

void *
countedAllocAligned(std::size_t size, std::size_t align)
{
    if (align < sizeof(void *))
        align = sizeof(void *);
    void *p = nullptr;
    if (posix_memalign(&p, align, size > 0 ? size : align) != 0)
        throw std::bad_alloc();
    gAllocCount.fetch_add(1, std::memory_order_relaxed);
    gAllocBytes.fetch_add(size, std::memory_order_relaxed);
    return p;
}

} // namespace

namespace c4::perf {

AllocStats
allocStatsNow()
{
    AllocStats stats;
    stats.count = gAllocCount.load(std::memory_order_relaxed);
    stats.bytes = gAllocBytes.load(std::memory_order_relaxed);
    return stats;
}

} // namespace c4::perf

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    try {
        return countedAlloc(size);
    } catch (...) {
        return nullptr;
    }
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    try {
        return countedAlloc(size);
    } catch (...) {
        return nullptr;
    }
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    return countedAllocAligned(size,
                               static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return countedAllocAligned(size,
                               static_cast<std::size_t>(align));
}

void *
operator new(std::size_t size, std::align_val_t align,
             const std::nothrow_t &) noexcept
{
    try {
        return countedAllocAligned(size,
                                   static_cast<std::size_t>(align));
    } catch (...) {
        return nullptr;
    }
}

void *
operator new[](std::size_t size, std::align_val_t align,
               const std::nothrow_t &) noexcept
{
    try {
        return countedAllocAligned(size,
                                   static_cast<std::size_t>(align));
    } catch (...) {
        return nullptr;
    }
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t,
                const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t,
                  const std::nothrow_t &) noexcept
{
    std::free(p);
}
