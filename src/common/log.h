/**
 * @file
 * Minimal leveled logging for the simulator.
 *
 * The simulator is a library, so logging is off by default (Warn level) and
 * is routed through a single global sink that tests can silence or capture.
 * Messages are printf-formatted; the call sites stay terse:
 *
 *     logInfo("c4p", "allocated path leaf=%d spine=%d", leaf, spine);
 */

#ifndef C4_COMMON_LOG_H
#define C4_COMMON_LOG_H

#include <cstdarg>
#include <functional>
#include <string>

namespace c4 {

enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

/** Name of a level for rendering. */
const char *logLevelName(LogLevel level);

/** Global minimum level; messages below it are dropped. */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/**
 * Replace the sink. The default sink writes "LEVEL [tag] message" lines to
 * stderr. Passing nullptr restores the default.
 *
 * Thread-safe: the sink swap and every emit serialize on one mutex
 * (and the level is atomic), because trial sweeps log from
 * std::thread workers. The sink itself is invoked under that mutex —
 * a sink must not log re-entrantly.
 */
using LogSink =
    std::function<void(LogLevel, const std::string &tag,
                       const std::string &message)>;
void setLogSink(LogSink sink);

/** Core emit function; prefer the level helpers below. */
void logMessage(LogLevel level, const char *tag, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

#define C4_DEFINE_LOG_HELPER(Name, Level)                                    \
    template <typename... Args>                                              \
    void Name(const char *tag, const char *fmt, Args... args)                \
    {                                                                        \
        logMessage(LogLevel::Level, tag, fmt, args...);                      \
    }

C4_DEFINE_LOG_HELPER(logTrace, Trace)
C4_DEFINE_LOG_HELPER(logDebug, Debug)
C4_DEFINE_LOG_HELPER(logInfo, Info)
C4_DEFINE_LOG_HELPER(logWarn, Warn)
C4_DEFINE_LOG_HELPER(logError, Error)

#undef C4_DEFINE_LOG_HELPER

} // namespace c4

#endif // C4_COMMON_LOG_H
