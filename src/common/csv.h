/**
 * @file
 * CSV emission, mirroring the per-layer time-series files ACCL produces in
 * the paper (comm-stats.csv, coll-stats.csv, rank-stats.csv, conn-stats.csv).
 *
 * CsvWriter targets any std::ostream so tests can write to a stringstream
 * and benches to files next to their stdout tables.
 */

#ifndef C4_COMMON_CSV_H
#define C4_COMMON_CSV_H

#include <initializer_list>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace c4 {

/**
 * Streaming CSV writer with RFC-4180 quoting.
 */
class CsvWriter
{
  public:
    /** @param out destination stream; must outlive the writer. */
    explicit CsvWriter(std::ostream &out);

    /** Write the header row. Must be the first row written, if used. */
    void header(const std::vector<std::string> &columns);

    /** @name Cell appenders; a row is closed with endRow(). @{ */
    CsvWriter &cell(const std::string &v);
    CsvWriter &cell(const char *v);
    CsvWriter &cell(double v);
    CsvWriter &cell(std::int64_t v);
    CsvWriter &cell(std::int32_t v);
    CsvWriter &cell(std::uint64_t v);
    /** @} */

    void endRow();

    /** Convenience: write an entire row of strings. */
    void row(const std::vector<std::string> &cells);

    std::size_t rowsWritten() const { return rows_; }

  private:
    std::ostream &out_;
    bool rowStarted_ = false;
    std::size_t rows_ = 0;

    void sep();
    static std::string escape(const std::string &v);
};

/**
 * Tiny CSV parser (for tests that round-trip telemetry files). Handles
 * quoted fields with embedded separators and quotes.
 */
std::vector<std::vector<std::string>> parseCsv(const std::string &text);

} // namespace c4

#endif // C4_COMMON_CSV_H
