#include "common/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace c4 {

std::string
SpecError::locate(const std::string &message, int line, int column)
{
    if (line <= 0)
        return message;
    return "line " + std::to_string(line) + ", column " +
           std::to_string(column) + ": " + message;
}

const Json::Member *
Json::find(const std::string &key) const
{
    for (const Member &m : object) {
        if (m.key == key)
            return &m;
    }
    return nullptr;
}

const char *
Json::kindName(Kind kind)
{
    switch (kind) {
      case Kind::Null: return "null";
      case Kind::Bool: return "boolean";
      case Kind::Int: return "integer";
      case Kind::Double: return "number";
      case Kind::String: return "string";
      case Kind::Array: return "array";
      case Kind::Object: return "object";
    }
    return "?";
}

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Json
    document()
    {
        skipWhitespace();
        Json v = value(0);
        skipWhitespace();
        if (pos_ < text_.size())
            fail("unexpected trailing content after the document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw SpecError(what, line_, column_);
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    char
    advance()
    {
        const char c = text_[pos_++];
        if (c == '\n') {
            ++line_;
            column_ = 1;
        } else {
            ++column_;
        }
        return c;
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                return;
            advance();
        }
    }

    void
    expect(char c, const char *context)
    {
        if (pos_ >= text_.size()) {
            fail(std::string("unexpected end of document; expected "
                             "'") +
                 c + "' " + context);
        }
        if (peek() != c) {
            fail(std::string("expected '") + c + "' " + context +
                 ", found '" + peek() + "'");
        }
        advance();
    }

    Json
    value(int depth)
    {
        if (depth > 64)
            fail("document nests deeper than 64 levels");
        skipWhitespace();
        if (pos_ >= text_.size())
            fail("unexpected end of document; expected a value");
        Json v;
        v.line = line_;
        v.column = column_;
        const char c = peek();
        if (c == '{')
            parseObject(v, depth);
        else if (c == '[')
            parseArray(v, depth);
        else if (c == '"')
            parseString(v);
        else if (c == '-' || (c >= '0' && c <= '9'))
            parseNumber(v);
        else if (literal("true"))
            v.kind = Json::Kind::Bool, v.boolean = true;
        else if (literal("false"))
            v.kind = Json::Kind::Bool, v.boolean = false;
        else if (literal("null"))
            v.kind = Json::Kind::Null;
        else
            fail(std::string("unexpected character '") + c + "'");
        return v;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return false;
        for (std::size_t i = 0; i < n; ++i)
            advance();
        return true;
    }

    void
    parseObject(Json &v, int depth)
    {
        v.kind = Json::Kind::Object;
        advance(); // '{'
        skipWhitespace();
        if (peek() == '}') {
            advance();
            return;
        }
        for (;;) {
            skipWhitespace();
            Json::Member m;
            m.keyLine = line_;
            m.keyColumn = column_;
            if (peek() != '"')
                fail("expected a quoted object key");
            Json key;
            parseString(key);
            m.key = key.string;
            if (v.find(m.key)) {
                throw SpecError("duplicate key \"" + m.key + "\"",
                                m.keyLine, m.keyColumn);
            }
            skipWhitespace();
            expect(':', "after object key");
            m.value = value(depth + 1);
            v.object.push_back(std::move(m));
            skipWhitespace();
            if (peek() == ',') {
                advance();
                continue;
            }
            expect('}', "to close the object");
            return;
        }
    }

    void
    parseArray(Json &v, int depth)
    {
        v.kind = Json::Kind::Array;
        advance(); // '['
        skipWhitespace();
        if (peek() == ']') {
            advance();
            return;
        }
        for (;;) {
            v.array.push_back(value(depth + 1));
            skipWhitespace();
            if (peek() == ',') {
                advance();
                continue;
            }
            expect(']', "to close the array");
            return;
        }
    }

    void
    parseString(Json &v)
    {
        v.kind = Json::Kind::String;
        advance(); // '"'
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = advance();
            if (c == '"')
                break;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character inside a string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape sequence");
            const char e = advance();
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    if (pos_ >= text_.size())
                        fail("unterminated \\u escape");
                    const char h = advance();
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("invalid \\u escape digit");
                }
                // UTF-8 encode the code point (BMP only; surrogate
                // pairs are not needed for spec files).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(
                        static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                fail(std::string("invalid escape '\\") + e + "'");
            }
        }
        v.string = std::move(out);
    }

    void
    parseNumber(Json &v)
    {
        const std::size_t start = pos_;
        bool isDouble = false;
        if (peek() == '-')
            advance();
        if (!(peek() >= '0' && peek() <= '9'))
            fail("malformed number");
        // JSON: a leading zero stands alone before the point/exponent.
        if (peek() == '0') {
            advance();
            if (peek() >= '0' && peek() <= '9')
                fail("malformed number: leading zero");
        }
        while (peek() >= '0' && peek() <= '9')
            advance();
        if (peek() == '.') {
            isDouble = true;
            advance();
            if (!(peek() >= '0' && peek() <= '9'))
                fail("malformed number: digit required after '.'");
            while (peek() >= '0' && peek() <= '9')
                advance();
        }
        if (peek() == 'e' || peek() == 'E') {
            isDouble = true;
            advance();
            if (peek() == '+' || peek() == '-')
                advance();
            if (!(peek() >= '0' && peek() <= '9'))
                fail("malformed number: digit required in exponent");
            while (peek() >= '0' && peek() <= '9')
                advance();
        }
        const std::string token = text_.substr(start, pos_ - start);
        v.raw = token;
        if (!isDouble) {
            errno = 0;
            char *end = nullptr;
            const long long i =
                std::strtoll(token.c_str(), &end, 10);
            if (errno == 0 && end && *end == '\0') {
                v.kind = Json::Kind::Int;
                v.integer = i;
                return;
            }
            // Fall through: out of int64 range, keep as double.
        }
        v.kind = Json::Kind::Double;
        errno = 0;
        v.number = std::strtod(token.c_str(), nullptr);
        if (errno == ERANGE && !std::isfinite(v.number))
            fail("number '" + token + "' is out of double range");
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int column_ = 1;
};

void
writeString(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (char c : s) {
        const auto u = static_cast<unsigned char>(c);
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (u < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", u);
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    out.push_back('"');
}

void
writeValue(std::string &out, const Json &v, int indent)
{
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    const std::string inner(
        static_cast<std::size_t>(indent + 1) * 2, ' ');
    switch (v.kind) {
      case Json::Kind::Null:
        out += "null";
        break;
      case Json::Kind::Bool:
        out += v.boolean ? "true" : "false";
        break;
      case Json::Kind::Int:
        out += std::to_string(v.integer);
        break;
      case Json::Kind::Double:
        out += v.raw.empty() ? formatJsonDouble(v.number) : v.raw;
        break;
      case Json::Kind::String:
        writeString(out, v.string);
        break;
      case Json::Kind::Array: {
        if (v.array.empty()) {
            out += "[]";
            break;
        }
        // Arrays of scalars stay on one line; nested structures get
        // one element per line.
        bool scalar = true;
        for (const Json &e : v.array) {
            if (e.kind == Json::Kind::Array ||
                e.kind == Json::Kind::Object) {
                scalar = false;
                break;
            }
        }
        out.push_back('[');
        bool first = true;
        for (const Json &e : v.array) {
            if (!first)
                out += scalar ? ", " : ",";
            if (!scalar) {
                out.push_back('\n');
                out += inner;
            }
            first = false;
            writeValue(out, e, indent + 1);
        }
        if (!scalar) {
            out.push_back('\n');
            out += pad;
        }
        out.push_back(']');
        break;
      }
      case Json::Kind::Object: {
        if (v.object.empty()) {
            out += "{}";
            break;
        }
        out.push_back('{');
        bool first = true;
        for (const Json::Member &m : v.object) {
            if (!first)
                out.push_back(',');
            first = false;
            out.push_back('\n');
            out += inner;
            writeString(out, m.key);
            out += ": ";
            writeValue(out, m.value, indent + 1);
        }
        out.push_back('\n');
        out += pad;
        out.push_back('}');
        break;
      }
    }
}

/** One-line form: no indentation or newlines anywhere. */
void
writeValueCompact(std::string &out, const Json &v)
{
    switch (v.kind) {
      case Json::Kind::Null:
        out += "null";
        break;
      case Json::Kind::Bool:
        out += v.boolean ? "true" : "false";
        break;
      case Json::Kind::Int:
        out += std::to_string(v.integer);
        break;
      case Json::Kind::Double:
        out += v.raw.empty() ? formatJsonDouble(v.number) : v.raw;
        break;
      case Json::Kind::String:
        writeString(out, v.string);
        break;
      case Json::Kind::Array: {
        out.push_back('[');
        bool first = true;
        for (const Json &e : v.array) {
            if (!first)
                out.push_back(',');
            first = false;
            writeValueCompact(out, e);
        }
        out.push_back(']');
        break;
      }
      case Json::Kind::Object: {
        out.push_back('{');
        bool first = true;
        for (const Json::Member &m : v.object) {
            if (!first)
                out.push_back(',');
            first = false;
            writeString(out, m.key);
            out.push_back(':');
            writeValueCompact(out, m.value);
        }
        out.push_back('}');
        break;
      }
    }
}

} // namespace

std::string
formatJsonDouble(double v)
{
    // JSON has no encoding for these; surfacing the error beats
    // emitting a document that cannot re-parse.
    if (!std::isfinite(v))
        throw SpecError("non-finite number cannot be serialized", 0, 0);
    // Shortest decimal form that parses back to the same double, so
    // write -> parse -> write is byte-stable.
    char buf[40];
    for (int precision = 15; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    // A bare integer-looking token would re-parse as Kind::Int; keep
    // the double-ness explicit.
    if (!std::strpbrk(buf, ".eE"))
        std::strcat(buf, ".0");
    return buf;
}

Json
parseJson(const std::string &text)
{
    return Parser(text).document();
}

std::string
writeJson(const Json &value)
{
    std::string out;
    writeValue(out, value, 0);
    out.push_back('\n');
    return out;
}

std::string
writeJsonCompact(const Json &value)
{
    std::string out;
    writeValueCompact(out, value);
    return out;
}

} // namespace c4
