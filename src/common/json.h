/**
 * @file
 * A dependency-free JSON-subset reader/writer, shared by the spec-file
 * subsystem (specio), the sweep manifest journal, and the event-trace
 * exporters.
 *
 * The dialect is strict JSON (objects, arrays, strings, numbers,
 * true/false/null) minus nothing, plus nothing — no comments, no
 * trailing commas. What distinguishes this from a generic JSON library
 * is what those subsystems need from it:
 *
 *  - every value and object key remembers its line/column, so binder
 *    errors point at the offending spot in the file;
 *  - duplicate keys inside one object are a parse error (a silently
 *    ignored "oversubscription" written twice is a debugging trap);
 *  - integers are kept exact (std::int64_t) and distinct from doubles,
 *    and the writer formats doubles with the shortest representation
 *    that round-trips, so write -> parse -> write is byte-stable.
 */

#ifndef C4_COMMON_JSON_H
#define C4_COMMON_JSON_H

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace c4 {

/** A parse/bind failure, located in the source document. */
class SpecError : public std::runtime_error
{
  public:
    SpecError(std::string message, int line, int column)
        : std::runtime_error(locate(message, line, column)),
          line_(line), column_(column)
    {
    }

    int line() const { return line_; }
    int column() const { return column_; }

  private:
    static std::string locate(const std::string &message, int line,
                              int column);

    int line_;
    int column_;
};

/** One parsed JSON value, with source location. */
struct Json
{
    enum class Kind { Null, Bool, Int, Double, String, Array, Object };

    /** Object member; insertion order is preserved. Defined after the
     * class (it holds a Json by value). */
    struct Member;

    Kind kind = Kind::Null;
    int line = 0;
    int column = 0;

    bool boolean = false;
    std::int64_t integer = 0;
    double number = 0.0;
    /** Source token for numbers (writer emits it verbatim when set),
     * so exact-decimal encodings survive the double conversion. */
    std::string raw;
    std::string string;
    std::vector<Json> array;
    std::vector<Member> object;

    /** The object member named @p key, or nullptr. */
    const Member *find(const std::string &key) const;

    /** Human-readable kind name ("object", "string", ...). */
    static const char *kindName(Kind kind);
};

struct Json::Member
{
    std::string key;
    int keyLine = 0;
    int keyColumn = 0;
    Json value;
};

/**
 * Parse one JSON document (trailing garbage is an error).
 * @throws SpecError with 1-based line/column on malformed input.
 */
Json parseJson(const std::string &text);

/**
 * Serialize canonically: 2-space indent, members in insertion order,
 * doubles in shortest round-trip form. The same value always produces
 * the same bytes.
 */
std::string writeJson(const Json &value);

/**
 * Serialize on one line with no whitespace (JSONL records: one event
 * per line). Same canonical number/string formatting as writeJson.
 */
std::string writeJsonCompact(const Json &value);

/** Canonical number formatting (shared with the spec writer). */
std::string formatJsonDouble(double v);

} // namespace c4

#endif // C4_COMMON_JSON_H
