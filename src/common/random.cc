#include "common/random.h"

#include <cassert>
#include <cmath>

namespace c4 {

namespace {

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
Rng::splitmix64(std::uint64_t &x)
{
    return mixSeed(x += 0x9E3779B97F4A7C15ull);
}

std::uint64_t
mixSeed(std::uint64_t x)
{
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t salt)
{
    return mixSeed(base + 0x9E3779B97F4A7C15ull * (salt + 1));
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>((*this)());
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = (~0ull / span) * span;
    std::uint64_t v;
    do {
        v = (*this)();
    } while (v >= limit);
    return lo + static_cast<std::int64_t>(v % span);
}

double
Rng::exponential(double mean)
{
    assert(mean > 0.0);
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::normal(double mean, double stddev)
{
    if (hasSpareNormal_) {
        hasSpareNormal_ = false;
        return mean + stddev * spareNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spareNormal_ = r * std::sin(theta);
    hasSpareNormal_ = true;
    return mean + stddev * r * std::cos(theta);
}

double
Rng::lognormal(double median, double sigma)
{
    assert(median > 0.0);
    return median * std::exp(normal(0.0, sigma));
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::int64_t
Rng::poisson(double mean)
{
    if (mean <= 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth's multiplication method.
        const double limit = std::exp(-mean);
        double prod = uniform();
        std::int64_t n = 0;
        while (prod > limit) {
            prod *= uniform();
            ++n;
        }
        return n;
    }
    // Normal approximation with continuity correction for large means;
    // adequate for fault-campaign counts where mean >> 30.
    const double v = normal(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<std::int64_t>(v + 0.5);
}

std::int32_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights)
        total += w > 0.0 ? w : 0.0;
    if (total <= 0.0)
        return kInvalidId;
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const double w = weights[i] > 0.0 ? weights[i] : 0.0;
        if (target < w)
            return static_cast<std::int32_t>(i);
        target -= w;
    }
    return static_cast<std::int32_t>(weights.size()) - 1;
}

Rng
Rng::fork()
{
    return Rng((*this)());
}

} // namespace c4
