/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * All stochastic behaviour in the simulator (ECMP hashing noise, fault
 * arrival processes, compute jitter) flows through Rng so experiments are
 * reproducible from a single seed. The generator is xoshiro256**, which is
 * fast, has a 256-bit state and passes BigCrush.
 */

#ifndef C4_COMMON_RANDOM_H
#define C4_COMMON_RANDOM_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace c4 {

/**
 * One splitmix64 step: mix @p x into a well-distributed 64-bit value.
 * The shared primitive behind Rng seeding and derived sub-seeds
 * (per-trial seeds, per-consumer streams).
 */
std::uint64_t mixSeed(std::uint64_t x);

/**
 * Derive an independent stream seed from a base seed and a salt
 * (trial index, consumer id, ...). The single definition behind the
 * scenario runner's per-trial seeds and per-consumer sub-streams.
 */
std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t salt);

/**
 * xoshiro256** pseudo-random generator with distribution helpers.
 *
 * Satisfies the UniformRandomBitGenerator concept so it can also be used
 * with <random> distributions if ever needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed via splitmix64 so any 64-bit seed produces a good state. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Exponential variate with the given mean (mean > 0). */
    double exponential(double mean);

    /** Normal variate (Box-Muller). */
    double normal(double mean, double stddev);

    /**
     * Log-normal variate parameterized by the median and the multiplicative
     * spread sigma (sigma is the stddev of the underlying normal). Used for
     * human diagnosis times, which are heavy tailed.
     */
    double lognormal(double median, double sigma);

    /** Bernoulli trial. */
    bool chance(double p);

    /** Poisson-distributed count with the given mean (Knuth / PTRS hybrid). */
    std::int64_t poisson(double mean);

    /**
     * Sample an index from a discrete distribution given by non-negative
     * weights. Returns kInvalidId when all weights are zero.
     */
    std::int32_t weightedIndex(const std::vector<double> &weights);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(
                uniformInt(0, static_cast<std::int64_t>(i) - 1));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child generator (for per-module streams). */
    Rng fork();

  private:
    std::uint64_t s_[4];

    bool hasSpareNormal_ = false;
    double spareNormal_ = 0.0;

    static std::uint64_t splitmix64(std::uint64_t &x);
};

} // namespace c4

#endif // C4_COMMON_RANDOM_H
