/**
 * @file
 * ASCII table rendering for bench output. Every bench prints the rows of
 * the paper table/figure it regenerates through this class so the output
 * is uniform and diff-able against EXPERIMENTS.md.
 */

#ifndef C4_COMMON_TABLE_H
#define C4_COMMON_TABLE_H

#include <cstdint>
#include <string>
#include <vector>

namespace c4 {

/**
 * Column-aligned ASCII table.
 *
 *     AsciiTable t({"Task", "Baseline (Gbps)", "C4P (Gbps)"});
 *     t.addRow({"Task1", "171.9", "353.9"});
 *     std::cout << t.str();
 */
class AsciiTable
{
  public:
    explicit AsciiTable(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Insert a horizontal rule before the next row. */
    void addRule();

    /** @name Cell formatting helpers @{ */
    static std::string num(double v, int precision = 2);
    static std::string percent(double fraction, int precision = 2);
    static std::string integer(std::int64_t v);
    /** @} */

    std::size_t rowCount() const { return rows_.size(); }

    /** Render the table with a title line above it (title may be empty). */
    std::string str(const std::string &title = "") const;

  private:
    struct Row
    {
        bool rule = false;
        std::vector<std::string> cells;
    };

    std::vector<std::string> headers_;
    std::vector<Row> rows_;
};

} // namespace c4

#endif // C4_COMMON_TABLE_H
