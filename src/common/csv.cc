#include "common/csv.h"

#include <cstdio>

namespace c4 {

CsvWriter::CsvWriter(std::ostream &out) : out_(out)
{
}

void
CsvWriter::header(const std::vector<std::string> &columns)
{
    row(columns);
}

void
CsvWriter::sep()
{
    if (rowStarted_)
        out_ << ',';
    rowStarted_ = true;
}

std::string
CsvWriter::escape(const std::string &v)
{
    const bool needs_quotes =
        v.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes)
        return v;
    std::string out = "\"";
    for (char c : v) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

CsvWriter &
CsvWriter::cell(const std::string &v)
{
    sep();
    out_ << escape(v);
    return *this;
}

CsvWriter &
CsvWriter::cell(const char *v)
{
    return cell(std::string(v));
}

CsvWriter &
CsvWriter::cell(double v)
{
    sep();
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    out_ << buf;
    return *this;
}

CsvWriter &
CsvWriter::cell(std::int64_t v)
{
    sep();
    out_ << v;
    return *this;
}

CsvWriter &
CsvWriter::cell(std::int32_t v)
{
    sep();
    out_ << v;
    return *this;
}

CsvWriter &
CsvWriter::cell(std::uint64_t v)
{
    sep();
    out_ << v;
    return *this;
}

void
CsvWriter::endRow()
{
    out_ << '\n';
    rowStarted_ = false;
    ++rows_;
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    for (const auto &c : cells)
        cell(c);
    endRow();
}

std::vector<std::vector<std::string>>
parseCsv(const std::string &text)
{
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> current;
    std::string field;
    bool in_quotes = false;
    bool field_started = false;

    auto end_field = [&] {
        current.push_back(field);
        field.clear();
        field_started = false;
    };
    auto end_row = [&] {
        if (field_started || !current.empty()) {
            end_field();
            rows.push_back(std::move(current));
            current = {};
        }
    };

    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    field += '"';
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                field += c;
            }
            continue;
        }
        switch (c) {
          case '"':
            in_quotes = true;
            field_started = true;
            break;
          case ',':
            field_started = true;
            end_field();
            field_started = true;
            break;
          case '\r':
            break;
          case '\n':
            end_row();
            break;
          default:
            field += c;
            field_started = true;
        }
    }
    end_row();
    return rows;
}

} // namespace c4
