/**
 * @file
 * Fundamental typed quantities used throughout the C4 simulator.
 *
 * All simulation time is kept in integer nanoseconds to avoid floating
 * point drift in the event queue; bandwidth is kept in bits per second.
 * Helper constructors and converters keep call sites readable
 * (e.g. `seconds(2.5)`, `gbps(200)`).
 */

#ifndef C4_COMMON_TYPES_H
#define C4_COMMON_TYPES_H

#include <cstdint>
#include <limits>
#include <string>

namespace c4 {

/** Simulation time in integer nanoseconds. */
using Time = std::int64_t;

/** A span of simulation time, also in nanoseconds. */
using Duration = std::int64_t;

/** Sentinel for "no time" / "never". */
constexpr Time kTimeNever = std::numeric_limits<Time>::max();

/** @name Duration constructors @{ */
constexpr Duration
nanoseconds(double ns)
{
    return static_cast<Duration>(ns);
}

constexpr Duration
microseconds(double us)
{
    return static_cast<Duration>(us * 1e3);
}

constexpr Duration
milliseconds(double ms)
{
    return static_cast<Duration>(ms * 1e6);
}

constexpr Duration
seconds(double s)
{
    return static_cast<Duration>(s * 1e9);
}

constexpr Duration
minutes(double m)
{
    return seconds(m * 60.0);
}

constexpr Duration
hours(double h)
{
    return seconds(h * 3600.0);
}

constexpr Duration
days(double d)
{
    return hours(d * 24.0);
}
/** @} */

/** @name Duration converters @{ */
constexpr double
toSeconds(Duration d)
{
    return static_cast<double>(d) * 1e-9;
}

constexpr double
toMilliseconds(Duration d)
{
    return static_cast<double>(d) * 1e-6;
}

constexpr double
toMicroseconds(Duration d)
{
    return static_cast<double>(d) * 1e-3;
}

constexpr double
toHours(Duration d)
{
    return toSeconds(d) / 3600.0;
}
/** @} */

/** Bandwidth in bits per second (fluid model rates). */
using Bandwidth = double;

/** @name Bandwidth constructors @{ */
constexpr Bandwidth
bitsPerSec(double bps)
{
    return bps;
}

constexpr Bandwidth
gbps(double g)
{
    return g * 1e9;
}

constexpr double
toGbps(Bandwidth bw)
{
    return bw * 1e-9;
}
/** @} */

/** Data sizes in bytes. */
using Bytes = std::int64_t;

/** @name Byte-size constructors @{ */
constexpr Bytes
kib(double k)
{
    return static_cast<Bytes>(k * 1024.0);
}

constexpr Bytes
mib(double m)
{
    return static_cast<Bytes>(m * 1024.0 * 1024.0);
}

constexpr Bytes
gib(double g)
{
    return static_cast<Bytes>(g * 1024.0 * 1024.0 * 1024.0);
}
/** @} */

/**
 * Time a transfer of @p bytes takes at rate @p bw, in nanoseconds.
 * Returns kTimeNever for a non-positive rate (stalled flow).
 */
constexpr Duration
transferTime(Bytes bytes, Bandwidth bw)
{
    if (bw <= 0.0)
        return kTimeNever;
    return static_cast<Duration>(static_cast<double>(bytes) * 8.0 / bw * 1e9);
}

/** @name Entity identifiers @{ */
using NodeId = std::int32_t;
using GpuId = std::int32_t;
using NicId = std::int32_t;
using PortId = std::int32_t;
using SwitchId = std::int32_t;
using LinkId = std::int32_t;
using Rank = std::int32_t;
using JobId = std::int32_t;
using FlowId = std::int64_t;
using QpId = std::int64_t;
using CommId = std::int32_t;

constexpr std::int32_t kInvalidId = -1;
/** @} */

/** Pretty "12.3 GiB"-style size string. */
std::string formatBytes(Bytes bytes);

/** Pretty "123.4 Gbps"-style bandwidth string. */
std::string formatBandwidth(Bandwidth bw);

/** Pretty duration string choosing ns/us/ms/s units. */
std::string formatDuration(Duration d);

} // namespace c4

#endif // C4_COMMON_TYPES_H
