/**
 * @file
 * Lightweight statistics containers used by telemetry and benches.
 */

#ifndef C4_COMMON_STATS_H
#define C4_COMMON_STATS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace c4 {

/**
 * Accumulates samples and answers summary queries (mean, stddev, min, max,
 * percentiles). Samples are retained so percentiles are exact; the volumes
 * involved in our experiments (<= millions of samples) make this cheap.
 *
 * Empty-input contract: every query (mean, stddev, min, max, percentile,
 * median, cv) answers the sentinel 0.0 on an empty summary. That value is
 * indistinguishable from a real zero, so callers that care must check
 * empty() first or use percentileOr() with an explicit fallback.
 */
class Summary
{
  public:
    void add(double v);

    /** Merge another summary's samples into this one. */
    void merge(const Summary &other);

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double sum() const { return sum_; }
    double mean() const;
    /** Sample standard deviation (n-1 denominator); 0 for n < 2. */
    double stddev() const;
    double min() const;
    double max() const;

    /**
     * Exact percentile via nearest-rank interpolation.
     * @param p percentile, clamped to [0, 100]; 0.0 when empty.
     */
    double percentile(double p) const;

    /** Like percentile(), but answers @p fallback when empty. */
    double percentileOr(double p, double fallback) const;

    double median() const { return percentile(50.0); }

    /** Coefficient of variation (stddev / mean); 0 when mean is 0. */
    double cv() const;

    const std::vector<double> &samples() const { return samples_; }

    void clear();

    /** One-line human-readable rendering. */
    std::string str() const;

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
    double sum_ = 0.0;

    void ensureSorted() const;
};

/**
 * Fixed-width histogram over [lo, hi) with underflow/overflow buckets.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double v);

    bool empty() const { return total_ == 0; }
    std::size_t bucketCount() const { return counts_.size(); }
    std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }

    double bucketLo(std::size_t i) const;
    double bucketHi(std::size_t i) const;

    /** Multi-line ASCII rendering with proportional bars. */
    std::string str(std::size_t bar_width = 40) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * Bounded-memory sliding-window quantile estimator. Keeps only the most
 * recent @c capacity samples in a ring buffer, so memory never grows with
 * the stream length — unlike Summary, which retains every sample and
 * cannot survive a soak. Percentiles are exact over the current window
 * (sort of a scratch copy per query), which is designed for
 * snapshot-cadence reads, not per-sample reads.
 *
 * Empty-window contract: min(), max(), and percentile() answer the
 * sentinel 0.0 when the window is empty; use empty() or percentileOr()
 * when 0.0 is a legal sample value.
 */
class WindowedQuantile
{
  public:
    explicit WindowedQuantile(std::size_t capacity = 512);

    void add(double v);

    /** Samples ever observed (not just those still in the window). */
    std::uint64_t count() const { return count_; }
    /** Samples currently held in the window. */
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return ring_.size(); }
    bool empty() const { return size_ == 0; }

    /** Smallest sample in the window; 0.0 when empty. */
    double min() const;
    /** Largest sample in the window; 0.0 when empty. */
    double max() const;

    /**
     * Exact percentile over the window via nearest-rank interpolation.
     * @param p percentile, clamped to [0, 100]; 0.0 when empty.
     */
    double percentile(double p) const;

    /** Like percentile(), but answers @p fallback when empty. */
    double percentileOr(double p, double fallback) const;

    void clear();

  private:
    std::vector<double> ring_;
    std::size_t head_ = 0; ///< next write position
    std::size_t size_ = 0;
    std::uint64_t count_ = 0;
    mutable std::vector<double> scratch_;

    /** Sorted copy of the live window contents. */
    const std::vector<double> &sortedWindow() const;
};

/**
 * Exponentially-weighted moving average, used by the dynamic load balancer
 * to track per-path message completion times.
 */
class Ewma
{
  public:
    /** @param alpha weight of the newest sample, in (0, 1]. */
    explicit Ewma(double alpha = 0.2);

    void add(double v);

    bool empty() const { return count_ == 0; }
    double value() const { return value_; }
    std::uint64_t count() const { return count_; }

    void reset();

  private:
    double alpha_;
    double value_ = 0.0;
    std::uint64_t count_ = 0;
};

} // namespace c4

#endif // C4_COMMON_STATS_H
