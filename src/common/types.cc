#include "common/types.h"

#include <array>
#include <cmath>
#include <cstdio>

namespace c4 {

std::string
formatBytes(Bytes bytes)
{
    static const std::array<const char *, 5> units = {
        "B", "KiB", "MiB", "GiB", "TiB"};
    double v = static_cast<double>(bytes);
    std::size_t u = 0;
    while (std::fabs(v) >= 1024.0 && u + 1 < units.size()) {
        v /= 1024.0;
        ++u;
    }
    char buf[64];
    if (u == 0)
        std::snprintf(buf, sizeof(buf), "%.0f %s", v, units[u]);
    else
        std::snprintf(buf, sizeof(buf), "%.2f %s", v, units[u]);
    return buf;
}

std::string
formatBandwidth(Bandwidth bw)
{
    char buf[64];
    if (bw >= 1e9)
        std::snprintf(buf, sizeof(buf), "%.2f Gbps", bw * 1e-9);
    else if (bw >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.2f Mbps", bw * 1e-6);
    else if (bw >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.2f Kbps", bw * 1e-3);
    else
        std::snprintf(buf, sizeof(buf), "%.2f bps", bw);
    return buf;
}

std::string
formatDuration(Duration d)
{
    char buf[64];
    const double ns = static_cast<double>(d);
    if (d == kTimeNever)
        return "never";
    if (ns >= 3600e9)
        std::snprintf(buf, sizeof(buf), "%.2f h", ns / 3600e9);
    else if (ns >= 60e9)
        std::snprintf(buf, sizeof(buf), "%.2f min", ns / 60e9);
    else if (ns >= 1e9)
        std::snprintf(buf, sizeof(buf), "%.3f s", ns * 1e-9);
    else if (ns >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.3f ms", ns * 1e-6);
    else if (ns >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.3f us", ns * 1e-3);
    else
        std::snprintf(buf, sizeof(buf), "%.0f ns", ns);
    return buf;
}

} // namespace c4
