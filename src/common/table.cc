#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace c4 {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
AsciiTable::addRow(std::vector<std::string> cells)
{
    Row r;
    r.cells = std::move(cells);
    r.cells.resize(headers_.size());
    rows_.push_back(std::move(r));
}

void
AsciiTable::addRule()
{
    Row r;
    r.rule = true;
    rows_.push_back(std::move(r));
}

std::string
AsciiTable::num(double v, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
AsciiTable::percent(double fraction, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
AsciiTable::integer(std::int64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
}

std::string
AsciiTable::str(const std::string &title) const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();
    for (const auto &row : rows_) {
        if (row.rule)
            continue;
        for (std::size_t i = 0; i < row.cells.size(); ++i)
            widths[i] = std::max(widths[i], row.cells[i].size());
    }

    auto hline = [&] {
        std::string s = "+";
        for (auto w : widths)
            s += std::string(w + 2, '-') + "+";
        return s + "\n";
    };
    auto render_row = [&](const std::vector<std::string> &cells) {
        std::string s = "|";
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &c = i < cells.size() ? cells[i] : "";
            s += " " + c + std::string(widths[i] - c.size(), ' ') + " |";
        }
        return s + "\n";
    };

    std::ostringstream os;
    if (!title.empty())
        os << title << "\n";
    os << hline() << render_row(headers_) << hline();
    for (const auto &row : rows_) {
        if (row.rule)
            os << hline();
        else
            os << render_row(row.cells);
    }
    os << hline();
    return os.str();
}

} // namespace c4
