#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace c4 {

void
Summary::add(double v)
{
    if (!samples_.empty() && v < samples_.back())
        sorted_ = false;
    samples_.push_back(v);
    sum_ += v;
}

void
Summary::merge(const Summary &other)
{
    for (double v : other.samples_)
        add(v);
}

double
Summary::mean() const
{
    return samples_.empty() ? 0.0 : sum_ / static_cast<double>(count());
}

double
Summary::stddev() const
{
    if (count() < 2)
        return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double v : samples_)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(count() - 1));
}

double
Summary::min() const
{
    ensureSorted();
    return samples_.empty() ? 0.0 : samples_.front();
}

double
Summary::max() const
{
    ensureSorted();
    return samples_.empty() ? 0.0 : samples_.back();
}

double
Summary::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    p = std::clamp(p, 0.0, 100.0);
    const double rank = p / 100.0 * static_cast<double>(count() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, count() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double
Summary::percentileOr(double p, double fallback) const
{
    return samples_.empty() ? fallback : percentile(p);
}

double
Summary::cv() const
{
    const double m = mean();
    return m == 0.0 ? 0.0 : stddev() / m;
}

void
Summary::clear()
{
    samples_.clear();
    sorted_ = true;
    sum_ = 0.0;
}

void
Summary::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

std::string
Summary::str() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "n=%zu mean=%.4g sd=%.4g min=%.4g p50=%.4g p99=%.4g "
                  "max=%.4g",
                  count(), mean(), stddev(), min(), percentile(50.0),
                  percentile(99.0), max());
    return buf;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    assert(hi > lo && buckets > 0);
}

void
Histogram::add(double v)
{
    ++total_;
    if (v < lo_) {
        ++underflow_;
        return;
    }
    if (v >= hi_) {
        ++overflow_;
        return;
    }
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto idx = static_cast<std::size_t>((v - lo_) / width);
    if (idx >= counts_.size())
        idx = counts_.size() - 1;
    ++counts_[idx];
}

double
Histogram::bucketLo(std::size_t i) const
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + width * static_cast<double>(i);
}

double
Histogram::bucketHi(std::size_t i) const
{
    return bucketLo(i + 1);
}

std::string
Histogram::str(std::size_t bar_width) const
{
    std::uint64_t peak = 1;
    for (auto c : counts_)
        peak = std::max(peak, c);

    std::ostringstream os;
    char buf[96];
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        std::snprintf(buf, sizeof(buf), "[%10.4g, %10.4g) %8llu ",
                      bucketLo(i), bucketHi(i),
                      static_cast<unsigned long long>(counts_[i]));
        os << buf;
        const auto bar = static_cast<std::size_t>(
            static_cast<double>(counts_[i]) / static_cast<double>(peak) *
            static_cast<double>(bar_width));
        os << std::string(bar, '#') << '\n';
    }
    if (underflow_ || overflow_) {
        os << "underflow=" << underflow_ << " overflow=" << overflow_
           << '\n';
    }
    return os.str();
}

WindowedQuantile::WindowedQuantile(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity, 0.0)
{
}

void
WindowedQuantile::add(double v)
{
    ring_[head_] = v;
    head_ = (head_ + 1) % ring_.size();
    if (size_ < ring_.size())
        ++size_;
    ++count_;
}

const std::vector<double> &
WindowedQuantile::sortedWindow() const
{
    scratch_.assign(ring_.begin(),
                    ring_.begin() + static_cast<std::ptrdiff_t>(size_));
    std::sort(scratch_.begin(), scratch_.end());
    return scratch_;
}

double
WindowedQuantile::min() const
{
    if (size_ == 0)
        return 0.0;
    return *std::min_element(ring_.begin(),
                             ring_.begin() +
                                 static_cast<std::ptrdiff_t>(size_));
}

double
WindowedQuantile::max() const
{
    if (size_ == 0)
        return 0.0;
    return *std::max_element(ring_.begin(),
                             ring_.begin() +
                                 static_cast<std::ptrdiff_t>(size_));
}

double
WindowedQuantile::percentile(double p) const
{
    if (size_ == 0)
        return 0.0;
    const std::vector<double> &w = sortedWindow();
    p = std::clamp(p, 0.0, 100.0);
    const double rank = p / 100.0 * static_cast<double>(size_ - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, size_ - 1);
    const double frac = rank - static_cast<double>(lo);
    return w[lo] * (1.0 - frac) + w[hi] * frac;
}

double
WindowedQuantile::percentileOr(double p, double fallback) const
{
    return size_ == 0 ? fallback : percentile(p);
}

void
WindowedQuantile::clear()
{
    head_ = 0;
    size_ = 0;
    count_ = 0;
}

Ewma::Ewma(double alpha) : alpha_(alpha)
{
    assert(alpha > 0.0 && alpha <= 1.0);
}

void
Ewma::add(double v)
{
    if (count_ == 0)
        value_ = v;
    else
        value_ = alpha_ * v + (1.0 - alpha_) * value_;
    ++count_;
}

void
Ewma::reset()
{
    value_ = 0.0;
    count_ = 0;
}

} // namespace c4
