#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <vector>

namespace c4 {

namespace {

// Trial sweeps log from std::thread workers: the level is an atomic
// (read on every call, no lock) and the sink is swapped and invoked
// under one mutex, so a test capturing output mid-sweep cannot race a
// concurrent emit.
std::atomic<LogLevel> g_level{LogLevel::Warn};
LogSink g_sink;
std::mutex g_mutex;

void
defaultSink(LogLevel level, const std::string &tag,
            const std::string &message)
{
    std::fprintf(stderr, "%-5s [%s] %s\n", logLevelName(level), tag.c_str(),
                 message.c_str());
}

} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Trace: return "TRACE";
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info:  return "INFO";
      case LogLevel::Warn:  return "WARN";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Off:   return "OFF";
    }
    return "?";
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogSink(LogSink sink)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_sink = std::move(sink);
}

void
logMessage(LogLevel level, const char *tag, const char *fmt, ...)
{
    const LogLevel min = g_level.load(std::memory_order_relaxed);
    if (level < min || min == LogLevel::Off)
        return;

    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);

    std::string message;
    if (needed > 0) {
        std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, args);
        message.assign(buf.data(), static_cast<std::size_t>(needed));
    }
    va_end(args);

    std::lock_guard<std::mutex> lock(g_mutex);
    if (g_sink)
        g_sink(level, tag, message);
    else
        defaultSink(level, tag, message);
}

} // namespace c4
