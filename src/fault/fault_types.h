/**
 * @file
 * Fault taxonomy for large-scale AI clusters, following the paper's
 * Table I root causes and Fig. 1 issue inventory.
 *
 * Fatal faults crash a worker (its communicators hang for every peer);
 * degradation faults slow a node's compute or a NIC's Tx/Rx; fabric
 * faults take links down. Each fault also carries what the *user* would
 * see — almost always just "NCCL Error" (Table I's central observation).
 */

#ifndef C4_FAULT_FAULT_TYPES_H
#define C4_FAULT_FAULT_TYPES_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace c4::fault {

/** Root-cause categories (Table I + runtime degradations). */
enum class FaultType : std::int8_t {
    CudaError = 0, ///< GPU driver/runtime error; worker dies
    EccError,      ///< GPU memory ECC error; worker dies
    NvlinkError,   ///< NVLink fault; worker dies
    NcclTimeout,   ///< collective stuck (software/stack); job stalls
    AckTimeout,    ///< RDMA ACK lost (NIC/path black hole); job stalls
    NetworkOther,  ///< switch/link faults surfacing as network errors
    SlowNode,      ///< degraded compute (DVFS, PCIe, contention)
    SlowNicTx,     ///< NIC transmit-side degradation
    SlowNicRx,     ///< NIC receive-side degradation
    LinkDown,      ///< leaf-spine trunk failure
};

constexpr int kNumFaultTypes = 10;

const char *faultTypeName(FaultType t);

/**
 * Reverse of faultTypeName: decode a kebab-case name (the form trace
 * events carry in their detail field) back into a FaultType.
 * @return true and set @p out on a known name, false otherwise.
 */
bool faultTypeFromName(const std::string &name, FaultType &out);

/** True if the fault kills worker processes (job crash syndrome). */
bool faultIsFatal(FaultType t);

/** What the user-facing error string says (Table I "Users' View"). */
const char *userVisibleError(FaultType t);

/**
 * Probability the fault is confined to a specific node/device
 * (Table I "Local" column).
 */
double faultLocalityPrior(FaultType t);

/** One concrete fault occurrence. */
struct FaultEvent
{
    FaultType type = FaultType::CudaError;
    Time when = 0;
    NodeId node = kInvalidId; ///< afflicted node (node-scoped faults)
    NicId nic = kInvalidId;   ///< afflicted NIC (NIC-scoped faults)
    LinkId link = kInvalidId; ///< afflicted fabric link (LinkDown)

    /**
     * Degradation severity for Slow* faults: the remaining fraction of
     * nominal performance in (0, 1]; e.g. 0.5 = half speed.
     */
    double severity = 1.0;

    /** Whether this occurrence is localized (sampled from the prior). */
    bool isLocal = true;

    std::string str() const;
};

/**
 * Per-category occurrence rates, expressed as expected events per
 * 1000 GPUs per 30 days — the scale of the paper's Table I job
 * (4096 GPUs, 40 crashes/month).
 */
struct FaultRates
{
    double perK[kNumFaultTypes] = {};

    double &
    operator[](FaultType t)
    {
        return perK[static_cast<int>(t)];
    }

    double
    operator[](FaultType t) const
    {
        return perK[static_cast<int>(t)];
    }

    /** Sum over categories. */
    double total() const;

    /** Scale every category by a hardware-quality factor. */
    FaultRates scaled(double factor) const;

    /**
     * Rates calibrated to Table I: ~40 crashes per month at 4096 GPUs
     * with the paper's cause distribution (12.5% CUDA, 27.5% ECC/NVLink,
     * 20% NCCL timeout, 27.5% ACK timeout, 12.5% other network), plus
     * background degradation faults.
     */
    static FaultRates paperJune2023();

    /**
     * The hardened December-2023 cluster: fatal categories reduced ~3.3x
     * (the paper's measured error-rate improvement).
     */
    static FaultRates paperDecember2023();
};

} // namespace c4::fault

#endif // C4_FAULT_FAULT_TYPES_H
