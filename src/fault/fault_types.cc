#include "fault/fault_types.h"

#include <cstdio>

namespace c4::fault {

const char *
faultTypeName(FaultType t)
{
    switch (t) {
      case FaultType::CudaError:    return "cuda-error";
      case FaultType::EccError:     return "ecc-error";
      case FaultType::NvlinkError:  return "nvlink-error";
      case FaultType::NcclTimeout:  return "nccl-timeout";
      case FaultType::AckTimeout:   return "ack-timeout";
      case FaultType::NetworkOther: return "network-other";
      case FaultType::SlowNode:     return "slow-node";
      case FaultType::SlowNicTx:    return "slow-nic-tx";
      case FaultType::SlowNicRx:    return "slow-nic-rx";
      case FaultType::LinkDown:     return "link-down";
    }
    return "?";
}

bool
faultTypeFromName(const std::string &name, FaultType &out)
{
    for (int t = 0; t < kNumFaultTypes; ++t) {
        const auto type = static_cast<FaultType>(t);
        if (name == faultTypeName(type)) {
            out = type;
            return true;
        }
    }
    return false;
}

bool
faultIsFatal(FaultType t)
{
    switch (t) {
      case FaultType::CudaError:
      case FaultType::EccError:
      case FaultType::NvlinkError:
      case FaultType::NcclTimeout:
      case FaultType::AckTimeout:
        return true;
      default:
        return false;
    }
}

const char *
userVisibleError(FaultType t)
{
    // Table I: almost every root cause surfaces as "NCCL Error".
    switch (t) {
      case FaultType::CudaError:
      case FaultType::EccError:
      case FaultType::NvlinkError:
      case FaultType::NcclTimeout:
      case FaultType::AckTimeout:
        return "NCCL Error";
      case FaultType::NetworkOther:
      case FaultType::LinkDown:
        return "Network Error";
      case FaultType::SlowNode:
      case FaultType::SlowNicTx:
      case FaultType::SlowNicRx:
        return "(silent slowdown)";
    }
    return "?";
}

double
faultLocalityPrior(FaultType t)
{
    // Table I "Local" column.
    switch (t) {
      case FaultType::CudaError:    return 1.0;
      case FaultType::EccError:     return 1.0;
      case FaultType::NvlinkError:  return 1.0;
      case FaultType::NcclTimeout:  return 0.75;
      case FaultType::AckTimeout:   return 0.818;
      case FaultType::NetworkOther: return 0.40;
      case FaultType::SlowNode:     return 1.0;
      case FaultType::SlowNicTx:    return 1.0;
      case FaultType::SlowNicRx:    return 1.0;
      case FaultType::LinkDown:     return 0.0;
    }
    return 1.0;
}

std::string
FaultEvent::str() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s@%.3fs node=%d nic=%d link=%d sev=%.2f %s",
                  faultTypeName(type), toSeconds(when), node, nic, link,
                  severity, isLocal ? "local" : "non-local");
    return buf;
}

double
FaultRates::total() const
{
    double t = 0.0;
    for (double r : perK)
        t += r;
    return t;
}

FaultRates
FaultRates::scaled(double factor) const
{
    FaultRates out = *this;
    for (double &r : out.perK)
        r *= factor;
    return out;
}

FaultRates
FaultRates::paperJune2023()
{
    // 40 crashes / month at 4096 GPUs ~= 9.77 crashes per 1000 GPUs per
    // month, split per Table I's cause distribution.
    constexpr double crashes_per_k = 40.0 / 4.096;
    FaultRates r;
    r[FaultType::CudaError] = crashes_per_k * 0.125;
    r[FaultType::EccError] = crashes_per_k * 0.1375; // half of 27.5%
    r[FaultType::NvlinkError] = crashes_per_k * 0.1375;
    r[FaultType::NcclTimeout] = crashes_per_k * 0.20;
    r[FaultType::AckTimeout] = crashes_per_k * 0.275;
    r[FaultType::NetworkOther] = crashes_per_k * 0.125;
    // Background degradations (not crash-counted in Table I).
    r[FaultType::SlowNode] = 2.0;
    r[FaultType::SlowNicTx] = 0.8;
    r[FaultType::SlowNicRx] = 0.8;
    r[FaultType::LinkDown] = 0.5;
    return r;
}

FaultRates
FaultRates::paperDecember2023()
{
    // "the average error rate has decreased by 3.33x, after the most
    // vulnerable components were identified and enhanced".
    FaultRates r = paperJune2023().scaled(1.0 / 3.33);
    return r;
}

} // namespace c4::fault
