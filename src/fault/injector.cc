#include "fault/injector.h"

#include <cassert>

#include "common/log.h"

namespace c4::fault {

FaultInjector::FaultInjector(Simulator &sim, std::uint64_t seed)
    : sim_(sim), rng_(seed)
{
}

void
FaultInjector::addObserver(Observer observer)
{
    observers_.push_back(std::move(observer));
}

void
FaultInjector::injectAt(Time when, FaultEvent ev)
{
    assert(when >= sim_.now());
    ev.when = when;
    sim_.scheduleAt(when, [this, ev] { fire(ev); });
}

void
FaultInjector::injectNow(FaultEvent ev)
{
    ev.when = sim_.now();
    fire(ev);
}

void
FaultInjector::fire(FaultEvent ev)
{
    logDebug("fault", "inject %s", ev.str().c_str());
    trace::TraceScope &tr = sim_.tracer();
    if (tr.wants(trace::EventKind::FaultInjected)) {
        trace::Event tev;
        tev.when = ev.when;
        tev.kind = trace::EventKind::FaultInjected;
        tev.node = ev.node;
        // NIC-scoped faults report the NIC; LinkDown the trunk index.
        tev.a = ev.type == FaultType::LinkDown ? ev.link : ev.nic;
        tev.b = ev.isLocal ? 1 : 0;
        tev.value = ev.severity;
        tev.detail = faultTypeName(ev.type);
        tr.record(std::move(tev));
    }
    history_.push_back(ev);
    if (applier_)
        applier_(ev);
    for (const auto &obs : observers_)
        obs(ev);
}

std::size_t
FaultInjector::startCampaign(const FaultRates &rates,
                             const std::vector<NodeId> &nodes,
                             int nicsPerNode, int gpusPerNode,
                             int numTrunks, Duration duration)
{
    assert(!nodes.empty());
    assert(nicsPerNode >= 1 && gpusPerNode >= 1);

    const double gpu_k =
        static_cast<double>(nodes.size()) * gpusPerNode / 1000.0;
    const double months = toSeconds(duration) / toSeconds(days(30));

    // All arrivals are known up front, so they go through the batch
    // scheduler: one slot-reservation pass and one heapify instead of a
    // sift-up per fault. Delays are collected in draw order and the
    // batch assigns sequence numbers in array order, so fire order (and
    // every downstream golden) is identical to per-event scheduleAt.
    struct FireFn
    {
        FaultInjector *inj;
        FaultEvent ev;
        void operator()() const { inj->fire(ev); }
    };
    std::vector<std::pair<Duration, FireFn>> arrivals;
    for (int t = 0; t < kNumFaultTypes; ++t) {
        const auto type = static_cast<FaultType>(t);
        const double mean = rates[type] * gpu_k * months;
        const std::int64_t count = rng_.poisson(mean);
        for (std::int64_t i = 0; i < count; ++i) {
            FaultEvent ev;
            ev.type = type;
            ev.node = nodes[static_cast<std::size_t>(rng_.uniformInt(
                0, static_cast<std::int64_t>(nodes.size()) - 1))];
            ev.nic = static_cast<NicId>(
                rng_.uniformInt(0, nicsPerNode - 1));
            if (type == FaultType::LinkDown && numTrunks > 0) {
                // The applier interprets `link` as a trunk index.
                ev.link = static_cast<LinkId>(
                    rng_.uniformInt(0, numTrunks - 1));
            }
            ev.isLocal = rng_.chance(faultLocalityPrior(type));
            switch (type) {
              case FaultType::SlowNode:
                // Stragglers run at 60-95% of nominal compute speed.
                ev.severity = rng_.uniform(0.60, 0.95);
                break;
              case FaultType::SlowNicTx:
              case FaultType::SlowNicRx:
                // Degraded NICs deliver 25-70% of port bandwidth.
                ev.severity = rng_.uniform(0.25, 0.70);
                break;
              default:
                ev.severity = 1.0;
            }
            const Duration delay = static_cast<Duration>(
                rng_.uniform() * static_cast<double>(duration));
            ev.when = sim_.now() + delay;
            arrivals.emplace_back(delay, FireFn{this, ev});
        }
    }
    const std::size_t scheduled = arrivals.size();
    sim_.scheduleBatchAfter(std::move(arrivals));
    return scheduled;
}

} // namespace c4::fault
