/**
 * @file
 * Fault injection: one-shot scheduled faults (tests, examples) and
 * Poisson campaigns over a node population (Table I / Table III
 * experiments).
 *
 * The injector decides *what happens when*; the physical effect is
 * applied by an Applier callback installed by the cluster runtime, which
 * routes crash faults into jobs, degradations into the fabric, and link
 * failures into the topology. This keeps the injector usable standalone
 * (e.g. the Table I bench only needs the sampled event stream).
 */

#ifndef C4_FAULT_INJECTOR_H
#define C4_FAULT_INJECTOR_H

#include <functional>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "fault/fault_types.h"
#include "sim/simulator.h"

namespace c4::fault {

/** Applies the physical consequence of a fault to the system. */
using Applier = std::function<void(const FaultEvent &)>;

/** Passive observer of injected faults. */
using Observer = std::function<void(const FaultEvent &)>;

class FaultInjector
{
  public:
    FaultInjector(Simulator &sim, std::uint64_t seed = 0xFA17FA17ull);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Install the effect applier (cluster runtime wiring). */
    void setApplier(Applier applier) { applier_ = std::move(applier); }

    /** Add a passive observer (telemetry, root-cause records). */
    void addObserver(Observer observer);

    /**
     * Schedule one fault at an absolute time. Fields of @p ev other than
     * `when` are used as-is; `when` must be >= now.
     */
    void injectAt(Time when, FaultEvent ev);

    /** Inject immediately. */
    void injectNow(FaultEvent ev);

    /**
     * Run a Poisson campaign: for each category, events arrive at
     * rate[type] per 1000 GPUs per 30 days over the given population,
     * for @p duration starting now. Targets (node / NIC / severity /
     * locality) are sampled uniformly.
     *
     * @param rates per-category rates
     * @param nodes candidate victim nodes
     * @param nicsPerNode NIC count for NIC-scoped faults
     * @param gpusPerNode population scaling for the per-1000-GPU rates
     * @param numTrunks candidate trunk-link count for LinkDown (the
     *        applier maps the sampled index to a LinkId)
     * @param duration campaign length
     * @return number of events scheduled
     */
    std::size_t startCampaign(const FaultRates &rates,
                              const std::vector<NodeId> &nodes,
                              int nicsPerNode, int gpusPerNode,
                              int numTrunks, Duration duration);

    /** All events injected so far (applied ones only). */
    const std::vector<FaultEvent> &history() const { return history_; }

    /** RNG access, e.g. for samplers that need the same stream. */
    Rng &rng() { return rng_; }

  private:
    Simulator &sim_;
    Rng rng_;
    Applier applier_;
    std::vector<Observer> observers_;
    std::vector<FaultEvent> history_;

    void fire(FaultEvent ev);
};

} // namespace c4::fault

#endif // C4_FAULT_INJECTOR_H
